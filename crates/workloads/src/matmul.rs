//! Matrix multiplication: naive MxM, tiled GEMM (library stand-in), and
//! the tensor-core GEMM-MMA path.
//!
//! Memory layout for all three: `A` at 0, `B` at `n*n*elem`, `C` at
//! `2*n*n*elem`, all row-major `n x n`. Launch parameters:
//! `params = [a_base, b_base, c_base]`; `n` is baked into the code as an
//! immediate (as real library kernels are tuned per input size).

use crate::prec::PrecEmit;
use crate::{write_elem, Benchmark, CompareSpec, Scale, Workload};
use gpu_arch::{
    CmpOp, CodeGen, CodeGenProfile, Dim, KernelBuilder, LaunchConfig, MemWidth, Operand, Precision,
    Pred, Reg, SpecialReg,
};
use gpu_sim::GlobalMemory;

fn r(i: u8) -> Reg {
    Reg(i)
}
fn imm(v: u32) -> Operand {
    Operand::Imm(v)
}

/// Deterministic small-magnitude input value for element `(i, j)` of
/// matrix `which` (0 = A, 1 = B). Kept in [-1.5, 1.5] so products cannot
/// overflow even in binary16 across the supported sizes.
pub fn input_value(which: u32, i: u32, j: u32) -> f64 {
    let h = (i.wrapping_mul(7).wrapping_add(j.wrapping_mul(3)).wrapping_add(which * 11)) % 13;
    (h as f64 - 6.0) / 4.0
}

/// Integer-friendly input (small ints) for the INT variant of MxM used by
/// micro-tests.
pub fn input_value_int(which: u32, i: u32, j: u32) -> f64 {
    ((i.wrapping_mul(5).wrapping_add(j).wrapping_add(which * 3)) % 7) as f64 - 3.0
}

fn mat_size(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 16,
        Scale::Small => 32,
        Scale::Profile => 64,
    }
}

fn fill_inputs(prec: Precision, n: u32, int_inputs: bool) -> (GlobalMemory, u32, u32, u32) {
    let elem = prec.size_bytes();
    let a_base = 0u32;
    let b_base = n * n * elem;
    let c_base = 2 * n * n * elem;
    let mut mem = GlobalMemory::new(3 * n * n * elem);
    for i in 0..n {
        for j in 0..n {
            let (va, vb) = if int_inputs {
                (input_value_int(0, i, j), input_value_int(1, i, j))
            } else {
                (input_value(0, i, j), input_value(1, i, j))
            };
            write_elem(&mut mem, prec, a_base + (i * n + j) * elem, va);
            write_elem(&mut mem, prec, b_base + (i * n + j) * elem, vb);
        }
    }
    (mem, a_base, b_base, c_base)
}

/// Emit one `acc += A[row][k] * B[k][col]` body. `k` lives in r6; callers
/// advance it.
fn mxm_body(b: &mut KernelBuilder, e: &PrecEmit, n: u32) {
    // a_off = (row*n + k) << shift ; row in r5, a_base in r10
    b.imad(r(8), r(5).into(), imm(n), r(6).into());
    b.shl(r(8), r(8).into(), imm(e.shift()));
    b.iadd(r(8), r(8).into(), r(10).into());
    e.load_g(b, r(20), r(8), 0);
    // b_off = (k*n + col) << shift ; col in r7, b_base in r11
    b.imad(r(9), r(6).into(), imm(n), r(7).into());
    b.shl(r(9), r(9).into(), imm(e.shift()));
    b.iadd(r(9), r(9).into(), r(11).into());
    e.load_g(b, r(24), r(9), 0);
    e.fma(b, r(16), r(20).into(), r(24).into(), r(16).into());
}

/// Naive matrix multiplication: one thread per output element, 8x8 blocks.
pub fn mxm(prec: Precision, profile: &CodeGenProfile, scale: Scale) -> Workload {
    let n = mat_size(scale);
    let e = PrecEmit::new(prec);
    let name = Benchmark::Mxm.display_name(prec);
    let mut b = KernelBuilder::new(name.clone());

    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::TidY);
    b.s2r(r(2), SpecialReg::CtaidX);
    b.s2r(r(3), SpecialReg::CtaidY);
    b.imad(r(7), r(2).into(), imm(8), r(0).into()); // col
    b.imad(r(5), r(3).into(), imm(8), r(1).into()); // row
    b.ldp(r(10), 0); // a_base
    b.ldp(r(11), 1); // b_base
    b.ldp(r(12), 2); // c_base
    e.mov_const(&mut b, r(16), 0.0); // acc
    b.mov(r(6), imm(0)); // k

    if profile.strength_reduce {
        // Strength-reduced strided pointers + unrolling, the modern back
        // end's shape: two loads and one FMA per element with simple
        // pointer bumps.
        b.imul(r(8), r(5).into(), imm(n));
        b.shl(r(8), r(8).into(), imm(e.shift()));
        b.iadd(r(8), r(8).into(), r(10).into()); // a_ptr = A + row*n
        b.shl(r(9), r(7).into(), imm(e.shift()));
        b.iadd(r(9), r(9).into(), r(11).into()); // b_ptr = B + col
        let a_step = e.size();
        let b_step = n * e.size();
        b.label("kloop");
        for _ in 0..profile.mxm_unroll.max(1) {
            e.load_g(&mut b, r(20), r(8), 0);
            e.load_g(&mut b, r(24), r(9), 0);
            e.fma(&mut b, r(16), r(20).into(), r(24).into(), r(16).into());
            b.iadd(r(8), r(8).into(), imm(a_step));
            b.iadd(r(9), r(9).into(), imm(b_step));
            b.iadd(r(6), r(6).into(), imm(1));
        }
        b.isetp(Pred(0), CmpOp::Lt, r(6).into(), imm(n));
        b.if_p(Pred(0)).bra("kloop");
    } else {
        // No unrolling, full address recomputation each iteration, and —
        // on back ends that leave them — a redundant accumulator copy
        // (dead unless a fault hits it).
        b.label("kloop");
        mxm_body(&mut b, &e, n);
        if profile.redundant_moves {
            b.mov(r(28), r(16).into());
        }
        b.iadd(r(6), r(6).into(), imm(1));
        b.isetp(Pred(0), CmpOp::Lt, r(6).into(), imm(n));
        b.if_p(Pred(0)).bra("kloop");
    }

    // c_off = (row*n + col) << shift
    b.imad(r(8), r(5).into(), imm(n), r(7).into());
    b.shl(r(8), r(8).into(), imm(e.shift()));
    b.iadd(r(8), r(8).into(), r(12).into());
    e.store_g(&mut b, r(8), 0, r(16));
    b.exit();

    let kernel = b.build().expect("mxm kernel");
    let (mem, a_base, b_base, c_base) = fill_inputs(prec, n, false);
    let launch =
        LaunchConfig::new_2d(Dim::d2(n / 8, n / 8), Dim::d2(8, 8), vec![a_base, b_base, c_base]);
    Workload {
        name,
        benchmark: Benchmark::Mxm,
        precision: prec,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: c_base, len: n * n * prec.size_bytes() },
    }
}

/// Tiled, shared-memory GEMM: the cuBLAS stand-in. Marked `proprietary`
/// (SASSIFI cannot instrument it on Kepler) and register-fat (library
/// kernels trade occupancy for registers; Table I shows 127-248 registers
/// and large shared allocations).
pub fn gemm(prec: Precision, profile: &CodeGenProfile, scale: Scale) -> Workload {
    let n = mat_size(scale);
    // Library kernels are tuned per precision: double uses a smaller tile.
    let t: u32 = if prec == Precision::Double { 4 } else { 8 };
    let e = PrecEmit::new(prec);
    let elem = prec.size_bytes();
    let name = Benchmark::Gemm.display_name(prec);
    let mut b = KernelBuilder::new(name.clone());

    // Shared: As tile at 0, Bs tile at t*t*elem; plus a modeled library
    // workspace that pads the allocation the way cuBLAS kernels do.
    let tile_bytes = t * t * elem;
    let workspace = 4096u32;
    b.shared(2 * tile_bytes + workspace);
    b.reserve_regs(profile.gemm_reserve_regs.unwrap_or(match prec {
        Precision::Half => 127,
        Precision::Single => 134,
        Precision::Double => 234,
        Precision::Int32 => 128,
    }));
    b.proprietary();

    b.s2r(r(0), SpecialReg::TidX); // tx
    b.s2r(r(1), SpecialReg::TidY); // ty
    b.s2r(r(2), SpecialReg::CtaidX);
    b.s2r(r(3), SpecialReg::CtaidY);
    b.imad(r(7), r(2).into(), imm(t), r(0).into()); // col
    b.imad(r(5), r(3).into(), imm(t), r(1).into()); // row
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.ldp(r(12), 2);
    e.mov_const(&mut b, r(16), 0.0); // acc
    b.mov(r(6), imm(0)); // tile index m

    b.label("mloop");
    // Load A[row][m*t + tx] into As[ty][tx].
    b.imul(r(8), r(6).into(), imm(t));
    b.iadd(r(8), r(8).into(), r(0).into()); // m*t + tx
    b.imad(r(9), r(5).into(), imm(n), r(8).into());
    b.shl(r(9), r(9).into(), imm(e.shift()));
    b.iadd(r(9), r(9).into(), r(10).into());
    e.load_g(&mut b, r(20), r(9), 0);
    b.imad(r(9), r(1).into(), imm(t), r(0).into()); // ty*t + tx
    b.shl(r(9), r(9).into(), imm(e.shift()));
    e.store_s(&mut b, r(9), 0, r(20));
    // Load B[m*t + ty][col] into Bs[ty][tx].
    b.imul(r(8), r(6).into(), imm(t));
    b.iadd(r(8), r(8).into(), r(1).into()); // m*t + ty
    b.imad(r(8), r(8).into(), imm(n), r(7).into());
    b.shl(r(8), r(8).into(), imm(e.shift()));
    b.iadd(r(8), r(8).into(), r(11).into());
    e.load_g(&mut b, r(20), r(8), 0);
    b.imad(r(9), r(1).into(), imm(t), r(0).into());
    b.shl(r(9), r(9).into(), imm(e.shift()));
    e.store_s(&mut b, r(9), tile_bytes, r(20));
    b.bar();

    // Inner product over the tile (always unrolled: library code).
    for k in 0..t {
        // As[ty][k]
        b.imad(r(9), r(1).into(), imm(t), imm(k));
        b.shl(r(9), r(9).into(), imm(e.shift()));
        e.load_s(&mut b, r(20), r(9), 0);
        // Bs[k][tx]
        b.imad(r(9), Operand::Imm(k), imm(t), r(0).into());
        b.shl(r(9), r(9).into(), imm(e.shift()));
        e.load_s(&mut b, r(24), r(9), tile_bytes);
        e.fma(&mut b, r(16), r(20).into(), r(24).into(), r(16).into());
    }
    b.bar();
    b.iadd(r(6), r(6).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Lt, r(6).into(), imm(n / t));
    b.if_p(Pred(0)).bra("mloop");

    b.imad(r(8), r(5).into(), imm(n), r(7).into());
    b.shl(r(8), r(8).into(), imm(e.shift()));
    b.iadd(r(8), r(8).into(), r(12).into());
    e.store_g(&mut b, r(8), 0, r(16));
    b.exit();

    let kernel = b.build().expect("gemm kernel");
    let (mem, a_base, b_base, c_base) = fill_inputs(prec, n, false);
    let launch =
        LaunchConfig::new_2d(Dim::d2(n / t, n / t), Dim::d2(t, t), vec![a_base, b_base, c_base]);
    Workload {
        name,
        benchmark: Benchmark::Gemm,
        precision: prec,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: c_base, len: n * n * prec.size_bytes() },
    }
}

/// Tensor-core GEMM: one warp per 16x16 output tile, looping MMA over the
/// K dimension. `Half` accumulates in binary16 (HMMA); `Single` casts
/// binary32 inputs to binary16 and accumulates in binary32 (FMMA), like
/// the paper's FGEMM-MMA.
pub fn gemm_mma(prec: Precision, scale: Scale) -> Workload {
    assert!(
        matches!(prec, Precision::Half | Precision::Single),
        "GEMM-MMA supports half and single precision"
    );
    let n = mat_size(scale).max(16);
    let e = PrecEmit::new(prec);
    let elem = prec.size_bytes();
    let name = Benchmark::GemmMma.display_name(prec);
    let is_half = prec == Precision::Half;
    let mut b = KernelBuilder::new(name.clone());
    b.proprietary();
    b.reserve_regs(64);

    // One warp per block; grid is (n/16) x (n/16) tiles.
    b.s2r(r(0), SpecialReg::LaneId);
    b.s2r(r(2), SpecialReg::CtaidX); // tile col
    b.s2r(r(3), SpecialReg::CtaidY); // tile row
    b.ldp(r(50), 0); // a_base
    b.ldp(r(51), 1); // b_base
    b.ldp(r(52), 2); // c_base

    // Zero the accumulator fragment: HMMA uses 4 packed-f16 registers
    // (18..22), FMMA uses 8 f32 registers (18..26).
    if is_half {
        for j in 0..4u8 {
            b.mov(r(18 + j), imm(0));
        }
    } else {
        for j in 0..8u8 {
            b.mov(r(18 + j), Operand::imm_f32(0.0));
        }
    }

    b.mov(r(4), imm(0)); // kb: fragment index along K

    b.label("kloop");
    // Load this lane's 8 elements of the A fragment (rows tile_row*16..+16,
    // cols kb*16..+16) into packed regs 10..14, and B fragment (rows
    // kb*16..+16, cols tile_col*16..+16) into 14..18.
    for j in 0..8u32 {
        // idx = lane*8 + j ; local row/col of the fragment element
        b.imad(r(5), r(0).into(), imm(8), imm(j));
        b.shr(r(6), r(5).into(), imm(4)); // lr = idx / 16
        b.and(r(7), r(5).into(), imm(15)); // lc = idx % 16
                                           // A element address: ((tile_row*16 + lr) * n + kb*16 + lc) * elem
        b.imad(r(8), r(3).into(), imm(16), r(6).into());
        b.imad(r(8), r(8).into(), imm(n), r(7).into());
        b.imad(r(8), r(4).into(), imm(16), r(8).into());
        b.shl(r(8), r(8).into(), imm(e.shift()));
        b.iadd(r(8), r(8).into(), r(50).into());
        if is_half {
            b.ldg(MemWidth::W16, r(9), r(8), 0);
        } else {
            b.ldg(MemWidth::W32, r(9), r(8), 0);
            b.f2h(r(9), r(9).into()); // cast f32 -> f16 (the FMMA path)
        }
        let a_reg = 10 + (j / 2) as u8;
        if j % 2 == 0 {
            b.mov(r(a_reg), r(9).into());
        } else {
            b.shl(r(9), r(9).into(), imm(16));
            b.or(r(a_reg), r(a_reg).into(), r(9).into());
        }
        // B element address: ((kb*16 + lr) * n + tile_col*16 + lc) * elem
        b.imad(r(8), r(4).into(), imm(16), r(6).into());
        b.imad(r(8), r(8).into(), imm(n), r(7).into());
        b.imad(r(8), r(2).into(), imm(16), r(8).into());
        b.shl(r(8), r(8).into(), imm(e.shift()));
        b.iadd(r(8), r(8).into(), r(51).into());
        if is_half {
            b.ldg(MemWidth::W16, r(9), r(8), 0);
        } else {
            b.ldg(MemWidth::W32, r(9), r(8), 0);
            b.f2h(r(9), r(9).into());
        }
        let b_reg = 14 + (j / 2) as u8;
        if j % 2 == 0 {
            b.mov(r(b_reg), r(9).into());
        } else {
            b.shl(r(9), r(9).into(), imm(16));
            b.or(r(b_reg), r(b_reg).into(), r(9).into());
        }
    }
    if is_half {
        b.hmma(r(10), r(14), r(18));
    } else {
        b.fmma(r(10), r(14), r(18));
    }
    b.iadd(r(4), r(4).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Lt, r(4).into(), imm(n / 16));
    b.if_p(Pred(0)).bra("kloop");

    // Scatter the D fragment to C.
    for j in 0..8u32 {
        b.imad(r(5), r(0).into(), imm(8), imm(j));
        b.shr(r(6), r(5).into(), imm(4));
        b.and(r(7), r(5).into(), imm(15));
        // C element address: ((tile_row*16 + lr) * n + tile_col*16 + lc)
        b.imad(r(8), r(3).into(), imm(16), r(6).into());
        b.imad(r(8), r(8).into(), imm(n), r(7).into());
        b.imad(r(8), r(2).into(), imm(16), r(8).into());
        b.shl(r(8), r(8).into(), imm(e.shift()));
        b.iadd(r(8), r(8).into(), r(52).into());
        if is_half {
            let c_reg = 18 + (j / 2) as u8;
            if j % 2 == 0 {
                b.and(r(9), r(c_reg).into(), imm(0xFFFF));
            } else {
                b.shr(r(9), r(c_reg).into(), imm(16));
            }
            b.stg(MemWidth::W16, r(8), 0, r(9));
        } else {
            b.stg(MemWidth::W32, r(8), 0, r(18 + j as u8));
        }
    }
    b.exit();

    let kernel = b.build().expect("gemm-mma kernel");
    let (mem, a_base, b_base, c_base) = fill_inputs(prec, n, false);
    let launch =
        LaunchConfig::new_2d(Dim::d2(n / 16, n / 16), Dim::d2(32, 1), vec![a_base, b_base, c_base]);
    Workload {
        name,
        benchmark: Benchmark::GemmMma,
        precision: prec,
        codegen: CodeGen::Cuda10,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: c_base, len: n * n * elem },
    }
}
