//! Integer sorting: bottom-up mergesort and per-thread quicksort.
//!
//! Both are branch-heavy integer codes with data-dependent control flow —
//! the profile the paper's sorts exhibit (high occupancy, modest IPC,
//! small AVF).

use crate::{Benchmark, CompareSpec, Scale, Workload};
use gpu_arch::{
    CmpOp, CodeGenProfile, KernelBuilder, LaunchConfig, MemWidth, Operand, Precision, Pred, Reg,
    SpecialReg,
};
use gpu_sim::GlobalMemory;

fn r(i: u8) -> Reg {
    Reg(i)
}
fn imm(v: u32) -> Operand {
    Operand::Imm(v)
}
fn imi(v: i32) -> Operand {
    Operand::imm_i32(v)
}

/// Deterministic pseudo-random input array.
pub fn sort_input(n: u32) -> Vec<i32> {
    (0..n).map(|i| ((i.wrapping_mul(2654435761)) % 1000) as i32 - 500).collect()
}

/// Independent sort instances per launch (one block each). Batching gives
/// the sorts their paper-like occupancy ("processes different parts of the
/// input simultaneously").
fn batch(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 2,
        Scale::Profile => 16,
    }
}

// --------------------------------------------------------- mergesort ----

fn merge_n(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 64,
        Scale::Small => 256,
        Scale::Profile => 1024,
    }
}

/// Bottom-up mergesort: `log2(n)` phases; in phase `p` (width `w = 2^p`),
/// thread `t` merges runs `[t*2w, t*2w+w)` and `[t*2w+w, t*2w+2w)` from
/// the source buffer into the destination buffer; buffers ping-pong.
/// Every thread reaches every barrier (inactive threads skip only the
/// merge body).
pub fn mergesort(profile: &CodeGenProfile, scale: Scale) -> Workload {
    let n = merge_n(scale);
    let phases = n.trailing_zeros(); // n is a power of two
    let threads = n / 2;
    let name = Benchmark::Mergesort.display_name(Precision::Int32);
    let mut b = KernelBuilder::new(name.clone());
    b.shared(2560); // staging scratch, Table-I-sized; not functionally used

    // params: [a_base, b_base]; block bx sorts its own n-element array at
    // offset bx * 4n in both buffers.
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.imad(r(10), r(1).into(), imm(4 * n), r(10).into());
    b.imad(r(11), r(1).into(), imm(4 * n), r(11).into());

    b.mov(r(2), imm(0)); // phase
    b.mov(r(3), imm(1)); // width = 1 << phase

    b.label("phase");
    // src/dst by parity of phase
    b.and(r(4), r(2).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Eq, r(4).into(), imm(0));
    b.sel(r(16), r(10).into(), r(11).into(), Pred(0), false); // src
    b.sel(r(17), r(11).into(), r(10).into(), Pred(0), false); // dst

    // my run start = t * 2 * width; active iff start < n
    b.shl(r(5), r(3).into(), imm(1)); // 2w
    b.imul(r(6), r(0).into(), r(5).into()); // start
    b.isetp(Pred(1), CmpOp::Ge, r(6).into(), imm(n));
    b.if_p(Pred(1)).bra("phasebar");

    // i = 0 (left consumed), j = 0 (right consumed), k = 0 (written)
    b.mov(r(7), imm(0));
    b.mov(r(8), imm(0));
    b.mov(r(9), imm(0));
    b.label("mergeloop");
    // done when k == 2w
    b.isetp(Pred(2), CmpOp::Ge, r(9).into(), r(5).into());
    b.if_p(Pred(2)).bra("mergedone");
    // left exhausted? take right. right exhausted? take left. else compare.
    b.isetp(Pred(3), CmpOp::Ge, r(7).into(), r(3).into()); // i >= w
    b.isetp(Pred(4), CmpOp::Ge, r(8).into(), r(3).into()); // j >= w
                                                           // load left value (clamped index so the load is always in bounds)
    b.iadd(r(12), r(6).into(), r(7).into());
    b.imin(r(12), r(12).into(), imm(n - 1));
    b.shl(r(12), r(12).into(), imm(2));
    b.iadd(r(12), r(12).into(), r(16).into());
    b.ldg(MemWidth::W32, r(13), r(12), 0);
    // load right value
    b.iadd(r(12), r(6).into(), r(3).into());
    b.iadd(r(12), r(12).into(), r(8).into());
    b.imin(r(12), r(12).into(), imm(n - 1));
    b.shl(r(12), r(12).into(), imm(2));
    b.iadd(r(12), r(12).into(), r(16).into());
    b.ldg(MemWidth::W32, r(14), r(12), 0);
    // take_left = (!left_done) && (right_done || left <= right)
    b.isetp(Pred(5), CmpOp::Le, r(13).into(), r(14).into());
    // p5 = p5 || p4  (right done forces left) via select chain on an int
    b.mov(r(15), imm(0));
    b.sel(r(15), imm(1), r(15).into(), Pred(5), false);
    b.sel(r(15), imm(1), r(15).into(), Pred(4), false);
    b.sel(r(15), imm(0), r(15).into(), Pred(3), false); // left done: never
    b.isetp(Pred(5), CmpOp::Eq, r(15).into(), imm(1));
    // value = take_left ? left : right; advance the chosen pointer
    b.sel(r(18), r(13).into(), r(14).into(), Pred(5), false);
    b.iadd(r(12), r(7).into(), imm(1));
    b.sel(r(7), r(12).into(), r(7).into(), Pred(5), false);
    b.iadd(r(12), r(8).into(), imm(1));
    b.sel(r(8), r(8).into(), r(12).into(), Pred(5), false);
    if profile.redundant_moves {
        b.mov(r(19), r(18).into());
    }
    // store dst[start + k]
    b.iadd(r(12), r(6).into(), r(9).into());
    b.shl(r(12), r(12).into(), imm(2));
    b.iadd(r(12), r(12).into(), r(17).into());
    b.stg(MemWidth::W32, r(12), 0, r(18));
    b.iadd(r(9), r(9).into(), imm(1));
    b.bra("mergeloop");
    b.label("mergedone");
    b.label("phasebar");
    b.bar();
    b.iadd(r(2), r(2).into(), imm(1));
    b.shl(r(3), r(3).into(), imm(1));
    b.isetp(Pred(6), CmpOp::Lt, r(2).into(), imm(phases));
    b.if_p(Pred(6)).bra("phase");
    b.exit();

    let kernel = b.build().expect("mergesort kernel");
    let instances = batch(scale);
    let a_base = 0u32;
    let b_base = 4 * n * instances;
    let mut mem = GlobalMemory::new(8 * n * instances);
    for inst in 0..instances {
        for (i, v) in sort_input(n).into_iter().enumerate() {
            mem.write_u32_host(a_base + 4 * (inst * n + i as u32), v as u32)
                .expect("sort input buffer covers every element");
        }
    }
    // After `phases` ping-pongs the sorted data lives in a if phases is
    // even, b if odd.
    let out_base = if phases.is_multiple_of(2) { a_base } else { b_base };
    let launch = LaunchConfig::new(instances, threads, vec![a_base, b_base]);
    Workload {
        name,
        benchmark: Benchmark::Mergesort,
        precision: Precision::Int32,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: out_base, len: 4 * n * instances },
    }
}

// --------------------------------------------------------- quicksort ----

/// Elements each thread quicksorts.
pub const QS_CHUNK: u32 = 32;

fn qs_threads(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 32,
        Scale::Profile => 128,
    }
}

/// Per-thread iterative quicksort (Lomuto partition, explicit stack in
/// shared memory): each thread sorts its own `QS_CHUNK`-element slice of
/// the global array in place. Data-dependent branching throughout.
pub fn quicksort(profile: &CodeGenProfile, scale: Scale) -> Workload {
    let threads = qs_threads(scale);
    let instances = batch(scale);
    let n = threads * QS_CHUNK * instances;
    // Both subranges are pushed unconditionally, so worst-case depth is
    // the chunk size + 1; size generously to keep the stack safe for any
    // input permutation. The stack lives in "local" (global) memory, like
    // a register-spilled CUDA stack — shared memory stays tiny (Table I:
    // 328 B).
    let stack_depth = QS_CHUNK + 8;
    let name = Benchmark::Quicksort.display_name(Precision::Int32);
    let mut b = KernelBuilder::new(name.clone());
    b.shared(328);

    // params: [data_base, stack_base]
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    // global thread id, my chunk base address
    b.imad(r(2), r(1).into(), imm(threads), r(0).into());
    b.imul(r(3), r(2).into(), imm(QS_CHUNK));
    b.shl(r(3), r(3).into(), imm(2));
    b.iadd(r(3), r(3).into(), r(10).into());
    // my stack base (byte address in the local-memory arena)
    b.imad(r(4), r(2).into(), imm(stack_depth * 8), r(11).into());

    // push (0, QS_CHUNK-1); sp = 1 (sp counts pairs)
    b.mov(r(5), imm(0));
    b.stg(MemWidth::W32, r(4), 0, r(5));
    b.mov(r(5), imm(QS_CHUNK - 1));
    b.stg(MemWidth::W32, r(4), 4, r(5));
    b.mov(r(6), imm(1)); // sp

    b.label("qloop");
    b.isetp(Pred(0), CmpOp::Le, r(6).into(), imm(0));
    b.if_p(Pred(0)).bra("qdone");
    // pop (lo, hi)
    b.iadd(r(6), r(6).into(), imi(-1));
    b.shl(r(7), r(6).into(), imm(3));
    b.iadd(r(7), r(7).into(), r(4).into());
    b.ldg(MemWidth::W32, r(8), r(7), 0); // lo
    b.ldg(MemWidth::W32, r(9), r(7), 4); // hi
    b.isetp(Pred(1), CmpOp::Ge, r(8).into(), r(9).into());
    b.if_p(Pred(1)).bra("qloop");

    // Lomuto partition with pivot = data[hi].
    b.shl(r(12), r(9).into(), imm(2));
    b.iadd(r(12), r(12).into(), r(3).into());
    b.ldg(MemWidth::W32, r(13), r(12), 0); // pivot
    b.iadd(r(14), r(8).into(), imi(-1)); // i = lo - 1
    b.mov(r(15), r(8).into()); // j = lo
    b.label("part");
    b.isetp(Pred(2), CmpOp::Ge, r(15).into(), r(9).into());
    b.if_p(Pred(2)).bra("partdone");
    // if data[j] <= pivot: i++, swap(data[i], data[j])
    b.shl(r(16), r(15).into(), imm(2));
    b.iadd(r(16), r(16).into(), r(3).into());
    b.ldg(MemWidth::W32, r(17), r(16), 0); // data[j]
    b.isetp(Pred(3), CmpOp::Gt, r(17).into(), r(13).into());
    b.if_p(Pred(3)).bra("partnext");
    b.iadd(r(14), r(14).into(), imm(1));
    b.shl(r(18), r(14).into(), imm(2));
    b.iadd(r(18), r(18).into(), r(3).into());
    b.ldg(MemWidth::W32, r(19), r(18), 0); // data[i]
    b.stg(MemWidth::W32, r(18), 0, r(17));
    b.stg(MemWidth::W32, r(16), 0, r(19));
    b.label("partnext");
    b.iadd(r(15), r(15).into(), imm(1));
    b.bra("part");
    b.label("partdone");
    // place pivot: swap(data[i+1], data[hi])
    b.iadd(r(14), r(14).into(), imm(1));
    b.shl(r(18), r(14).into(), imm(2));
    b.iadd(r(18), r(18).into(), r(3).into());
    b.ldg(MemWidth::W32, r(19), r(18), 0);
    b.stg(MemWidth::W32, r(18), 0, r(13));
    b.stg(MemWidth::W32, r(12), 0, r(19));
    if profile.redundant_moves {
        b.mov(r(20), r(14).into());
    }
    // push (lo, p-1) and (p+1, hi)
    b.iadd(r(16), r(14).into(), imi(-1));
    b.shl(r(7), r(6).into(), imm(3));
    b.iadd(r(7), r(7).into(), r(4).into());
    b.stg(MemWidth::W32, r(7), 0, r(8));
    b.stg(MemWidth::W32, r(7), 4, r(16));
    b.iadd(r(6), r(6).into(), imm(1));
    b.iadd(r(16), r(14).into(), imm(1));
    b.shl(r(7), r(6).into(), imm(3));
    b.iadd(r(7), r(7).into(), r(4).into());
    b.stg(MemWidth::W32, r(7), 0, r(16));
    b.stg(MemWidth::W32, r(7), 4, r(9));
    b.iadd(r(6), r(6).into(), imm(1));
    b.bra("qloop");

    b.label("qdone");
    b.exit();

    let kernel = b.build().expect("quicksort kernel");
    let stack_base = 4 * n;
    let stack_bytes = instances * threads * stack_depth * 8;
    let mut mem = GlobalMemory::new(4 * n + stack_bytes);
    for (i, v) in sort_input(n).into_iter().enumerate() {
        mem.write_u32_host(4 * i as u32, v as u32)
            .expect("quicksort input buffer covers every element");
    }
    let launch = LaunchConfig::new(instances, threads, vec![0, stack_base]);
    Workload {
        name,
        benchmark: Benchmark::Quicksort,
        precision: Precision::Int32,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: 0, len: 4 * n },
    }
}

/// Host reference for quicksort: every chunk of the (possibly batched)
/// array sorted independently. `total_threads` = threads x instances.
pub fn quicksort_reference(total_threads: u32) -> Vec<i32> {
    let n = total_threads * QS_CHUNK;
    let mut data = sort_input(n);
    for c in 0..total_threads {
        let s = (c * QS_CHUNK) as usize;
        data[s..s + QS_CHUNK as usize].sort_unstable();
    }
    data
}

/// Host reference for mergesort: the fully sorted array.
pub fn mergesort_reference(n: u32) -> Vec<i32> {
    let mut data = sort_input(n);
    data.sort_unstable();
    data
}
