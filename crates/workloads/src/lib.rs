//! The fifteen representative codes of the paper (Table I), implemented as
//! SASS-like kernels for the architectural simulator.
//!
//! | Paper code | Here | Notes |
//! |---|---|---|
//! | MxM        | [`Benchmark::Mxm`]       | naive matrix multiply, one thread per output |
//! | GEMM       | [`Benchmark::Gemm`]      | shared-memory tiled, marked `proprietary` (cuBLAS stand-in) |
//! | GEMM-MMA   | [`Benchmark::GemmMma`]   | tensor-core path (Volta only) |
//! | Hotspot    | [`Benchmark::Hotspot`]   | 2-D thermal stencil with shared-memory tiles |
//! | Lava(MD)   | [`Benchmark::Lava`]      | particle interactions within neighbor boxes |
//! | Gaussian   | [`Benchmark::Gaussian`]  | Gaussian elimination, barrier per pivot |
//! | LUD        | [`Benchmark::Lud`]       | LU decomposition, barrier per pivot |
//! | NW         | [`Benchmark::Nw`]        | Needleman-Wunsch wavefront DP (integer) |
//! | BFS        | [`Benchmark::Bfs`]       | level-synchronous breadth-first search (integer) |
//! | CCL        | [`Benchmark::Ccl`]       | connected-component label propagation (integer) |
//! | Mergesort  | [`Benchmark::Mergesort`] | bottom-up merge phases (integer) |
//! | Quicksort  | [`Benchmark::Quicksort`] | per-thread explicit-stack quicksort (integer) |
//! | YOLOv2     | [`Benchmark::Yolov2`]    | small conv-net, conv-as-GEMM, tolerant compare |
//! | YOLOv3     | [`Benchmark::Yolov3`]    | deeper conv-net, tolerant compare |
//!
//! Each workload packages a kernel, launch geometry, prepared input memory
//! and an output-comparison rule, and can be built for any supported
//! [`Precision`] and [`CodeGen`] (the CUDA-7-era vs CUDA-10-era back ends
//! whose codegen differences drive the SASSIFI/NVBitFI AVF gap in the
//! paper).

mod cnn;
mod graph;
mod lava;
mod linalg;
mod matmul;
mod prec;
mod sort;
mod stencil;

pub use prec::PrecEmit;

// Host-side reference models, used by tests, examples and the harness.
pub use cnn::reference as yolo_reference;
pub use graph::{bfs_reference, ccl_reference, nw_reference};
pub use lava::reference as lava_reference;
pub use linalg::{gaussian_reference, lud_reference};
pub use matmul::input_value as matmul_input;
pub use prec::host as prec_host;
pub use sort::{mergesort_reference, quicksort_reference, sort_input};
pub use stencil::reference as hotspot_reference;

use gpu_arch::{CodeGen, CodeGenProfile, DeviceModel, Kernel, LaunchConfig, Precision};
use gpu_sim::{run, Executed, GlobalMemory, RunOptions};
use softfloat::F16;

/// Identifies one of the paper's codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Naive matrix multiplication.
    Mxm,
    /// Tiled library-style GEMM (proprietary stand-in).
    Gemm,
    /// GEMM on the tensor cores (Volta).
    GemmMma,
    /// Thermal stencil.
    Hotspot,
    /// Molecular-dynamics-style particle interactions.
    Lava,
    /// Gaussian elimination.
    Gaussian,
    /// LU decomposition.
    Lud,
    /// Needleman-Wunsch sequence alignment.
    Nw,
    /// Breadth-first search.
    Bfs,
    /// Connected-component labeling.
    Ccl,
    /// Merge sort.
    Mergesort,
    /// Quicksort.
    Quicksort,
    /// Small YOLO-like CNN (v2: shallower, less accurate).
    Yolov2,
    /// Larger YOLO-like CNN (v3: deeper, more accurate).
    Yolov3,
}

impl Benchmark {
    /// The paper's display name, with the precision prefix (e.g.
    /// "FHOTSPOT", "DGEMM", "CCL").
    pub fn display_name(self, precision: Precision) -> String {
        let base = match self {
            Benchmark::Mxm => "MXM",
            Benchmark::Gemm => "GEMM",
            Benchmark::GemmMma => "GEMM-MMA",
            Benchmark::Hotspot => "HOTSPOT",
            Benchmark::Lava => "LAVA",
            Benchmark::Gaussian => "GAUSSIAN",
            Benchmark::Lud => "LUD",
            Benchmark::Nw => "NW",
            Benchmark::Bfs => "BFS",
            Benchmark::Ccl => "CCL",
            Benchmark::Mergesort => "MERGESORT",
            Benchmark::Quicksort => "QUICKSORT",
            Benchmark::Yolov2 => "YOLOV2",
            Benchmark::Yolov3 => "YOLOV3",
        };
        if self == Benchmark::GemmMma {
            // The paper writes HGEMM-MMA / FGEMM-MMA.
            return format!("{}GEMM-MMA", precision.prefix());
        }
        format!("{}{}", precision.prefix(), base)
    }

    /// True for integer codes (no precision variants).
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            Benchmark::Nw
                | Benchmark::Bfs
                | Benchmark::Ccl
                | Benchmark::Mergesort
                | Benchmark::Quicksort
        )
    }
}

/// Problem-size scale. `Tiny` keeps unit tests fast; `Small` is the
/// default for injection/beam campaigns on a laptop-class host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Minimal sizes for unit tests.
    Tiny,
    /// Campaign sizes (default).
    #[default]
    Small,
    /// Larger sizes that saturate the 1-SM campaign devices, used for the
    /// Table I / Figure 1 profiling harness.
    Profile,
}

/// How a workload decides whether an output is corrupted (SDC).
#[derive(Clone, Debug, PartialEq)]
pub enum CompareSpec {
    /// Byte-exact comparison of an output region — the check the paper's
    /// HPC codes perform against a pre-computed golden output.
    ExactRegion {
        /// Start of the output region.
        offset: u32,
        /// Region length in bytes.
        len: u32,
    },
    /// CNN-style comparison: the top-scoring class must match (faults that
    /// do not change the classification "are not considered errors",
    /// Section VI).
    Classification {
        /// Base address of the score vector.
        offset: u32,
        /// Number of scores.
        count: u32,
        /// Element precision of the scores.
        precision: Precision,
    },
}

impl CompareSpec {
    /// True when `test` is an acceptable output given `golden`.
    pub fn matches(&self, golden: &GlobalMemory, test: &GlobalMemory) -> bool {
        match *self {
            CompareSpec::ExactRegion { offset, len } => {
                let (o, l) = (offset as usize, len as usize);
                golden.raw()[o..o + l] == test.raw()[o..o + l]
            }
            CompareSpec::Classification { offset, count, precision } => {
                argmax_region(golden, offset, count, precision)
                    == argmax_region(test, offset, count, precision)
            }
        }
    }
}

fn argmax_region(mem: &GlobalMemory, offset: u32, count: u32, precision: Precision) -> Option<u32> {
    let mut best: Option<(u32, f64)> = None;
    for i in 0..count {
        let v = read_elem(mem, precision, offset + i * precision.size_bytes());
        if !v.is_nan() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Write one element of the given precision at `addr` (host side).
pub fn write_elem(mem: &mut GlobalMemory, precision: Precision, addr: u32, value: f64) {
    match precision {
        Precision::Int32 => mem.write_u32_host(addr, value as i32 as u32),
        Precision::Half => mem.write_u16_host(addr, F16::from_f64(value).to_bits()),
        Precision::Single => mem.write_f32_host(addr, value as f32),
        Precision::Double => mem.write_f64_host(addr, value),
    }
    .expect("workload buffers are sized by the generator");
}

/// Read one element of the given precision at `addr` (host side).
pub fn read_elem(mem: &GlobalMemory, precision: Precision, addr: u32) -> f64 {
    let read = match precision {
        Precision::Int32 => mem.read_u32_host(addr).map(|v| v as i32 as f64),
        Precision::Half => mem.read_u16_host(addr).map(|v| F16::from_bits(v).to_f64()),
        Precision::Single => mem.read_f32_host(addr).map(f64::from),
        Precision::Double => mem.read_f64_host(addr),
    };
    read.expect("workload buffers are sized by the generator")
}

/// A ready-to-run workload instance.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Paper-style display name (FHOTSPOT, DGEMM, CCL, ...).
    pub name: String,
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// Data precision.
    pub precision: Precision,
    /// Toolchain generation the kernel was "compiled" with.
    pub codegen: CodeGen,
    /// The kernel.
    pub kernel: Kernel,
    /// Launch geometry and parameters.
    pub launch: LaunchConfig,
    /// Prepared input memory image.
    pub memory: GlobalMemory,
    /// Output acceptance rule.
    pub compare: CompareSpec,
}

impl Workload {
    /// Run fault-free with ECC on.
    pub fn golden(&self, device: &DeviceModel) -> Executed {
        self.run_with(device, &RunOptions::default())
    }

    /// Run with explicit options (fault plans, ECC mode, watchdog).
    pub fn run_with(&self, device: &DeviceModel, opts: &RunOptions) -> Executed {
        run(device, &self.kernel, &self.launch, self.memory.clone(), opts)
    }

    /// True when `test`'s output is acceptable relative to `golden`'s.
    pub fn output_matches(&self, golden: &Executed, test: &Executed) -> bool {
        self.compare.matches(&golden.memory, &test.memory)
    }
}

impl gpu_sim::Target for Workload {
    fn name(&self) -> &str {
        &self.name
    }
    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    fn launch(&self) -> &LaunchConfig {
        &self.launch
    }
    fn fresh_memory(&self) -> GlobalMemory {
        self.memory.clone()
    }
    fn output_matches(&self, golden: &Executed, faulty: &Executed) -> bool {
        Workload::output_matches(self, golden, faulty)
    }
}

/// Build a workload instance with a toolchain era's default quirks.
///
/// Equivalent to [`build_with`] using [`CodeGen::profile`]; device specs
/// can override individual quirk knobs, in which case callers pass the
/// spec's profile to [`build_with`] directly.
///
/// # Panics
/// Panics if the benchmark/precision combination is unsupported (e.g.
/// integer codes only support [`Precision::Int32`]; `GemmMma` requires
/// half or single precision).
pub fn build(
    benchmark: Benchmark,
    precision: Precision,
    codegen: CodeGen,
    scale: Scale,
) -> Workload {
    build_with(benchmark, precision, &codegen.profile(), scale)
}

/// Build a workload instance from an explicit codegen-quirk profile.
///
/// The generators branch only on the profile's knobs (unroll factors,
/// LICM, redundant moves, register reservations) — never on the era enum
/// — so spec-file quirk overrides reach every generated kernel.
///
/// # Panics
/// Panics if the benchmark/precision combination is unsupported (e.g.
/// integer codes only support [`Precision::Int32`]; `GemmMma` requires
/// half or single precision).
pub fn build_with(
    benchmark: Benchmark,
    precision: Precision,
    profile: &CodeGenProfile,
    scale: Scale,
) -> Workload {
    if benchmark.is_integer() {
        assert_eq!(precision, Precision::Int32, "{benchmark:?} is an integer code");
    } else {
        assert_ne!(precision, Precision::Int32, "{benchmark:?} is a floating-point code");
    }
    match benchmark {
        Benchmark::Mxm => matmul::mxm(precision, profile, scale),
        Benchmark::Gemm => matmul::gemm(precision, profile, scale),
        Benchmark::GemmMma => matmul::gemm_mma(precision, scale),
        Benchmark::Hotspot => stencil::hotspot(precision, profile, scale),
        Benchmark::Lava => lava::lava(precision, profile, scale),
        Benchmark::Gaussian => linalg::gaussian(precision, profile, scale),
        Benchmark::Lud => linalg::lud(precision, profile, scale),
        Benchmark::Nw => graph::nw(profile, scale),
        Benchmark::Bfs => graph::bfs(profile, scale),
        Benchmark::Ccl => graph::ccl(profile, scale),
        Benchmark::Mergesort => sort::mergesort(profile, scale),
        Benchmark::Quicksort => sort::quicksort(profile, scale),
        Benchmark::Yolov2 => cnn::yolo(2, precision, scale),
        Benchmark::Yolov3 => cnn::yolo(3, precision, scale),
    }
}

/// The Kepler test set of Table I (left half). SASSIFI-era codegen is
/// CUDA 7; pass [`CodeGen::Cuda10`] for the NVBitFI view of the same
/// sources.
pub fn kepler_suite(codegen: CodeGen, scale: Scale) -> Vec<Workload> {
    use Benchmark::*;
    use Precision::*;
    [
        (Ccl, Int32),
        (Bfs, Int32),
        (Lava, Single),
        (Hotspot, Single),
        (Gaussian, Single),
        (Lud, Single),
        (Nw, Int32),
        (Mxm, Single),
        (Gemm, Single),
        (Mergesort, Int32),
        (Quicksort, Int32),
        (Yolov2, Single),
        (Yolov3, Single),
    ]
    .into_iter()
    .map(|(b, p)| build(b, p, codegen, scale))
    .collect()
}

/// The Volta test set of Table I (right half): mixed-precision variants.
pub fn volta_suite(scale: Scale) -> Vec<Workload> {
    use Benchmark::*;
    use Precision::*;
    [
        (Lava, Half),
        (Lava, Single),
        (Lava, Double),
        (Hotspot, Half),
        (Hotspot, Single),
        (Hotspot, Double),
        (Mxm, Half),
        (Mxm, Single),
        (Mxm, Double),
        (Gemm, Half),
        (Gemm, Single),
        (Gemm, Double),
        (GemmMma, Half),
        (GemmMma, Single),
        (Yolov3, Half),
        (Yolov3, Single),
    ]
    .into_iter()
    .map(|(b, p)| build(b, p, CodeGen::Cuda10, scale))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Benchmark::Hotspot.display_name(Precision::Half), "HHOTSPOT");
        assert_eq!(Benchmark::Gemm.display_name(Precision::Double), "DGEMM");
        assert_eq!(Benchmark::Ccl.display_name(Precision::Int32), "CCL");
        assert_eq!(Benchmark::GemmMma.display_name(Precision::Half), "HGEMM-MMA");
        assert_eq!(Benchmark::Yolov3.display_name(Precision::Single), "FYOLOV3");
    }

    #[test]
    fn elem_roundtrip_all_precisions() {
        let mut mem = GlobalMemory::new(32);
        for (p, v) in [
            (Precision::Int32, -7.0),
            (Precision::Half, 1.5),
            (Precision::Single, 3.25),
            (Precision::Double, -0.125),
        ] {
            write_elem(&mut mem, p, 8, v);
            assert_eq!(read_elem(&mem, p, 8), v, "{p:?}");
        }
    }

    #[test]
    fn classification_compare_tolerates_small_changes() {
        let mut golden = GlobalMemory::new(16);
        let mut test = GlobalMemory::new(16);
        for (i, v) in [0.1f32, 0.9, 0.3, 0.2].iter().enumerate() {
            golden.write_f32_host(4 * i as u32, *v).unwrap();
        }
        for (i, v) in [0.15f32, 0.8, 0.35, 0.1].iter().enumerate() {
            test.write_f32_host(4 * i as u32, *v).unwrap();
        }
        let spec =
            CompareSpec::Classification { offset: 0, count: 4, precision: Precision::Single };
        assert!(spec.matches(&golden, &test)); // argmax still class 1
        test.write_f32_host(8, 2.0).unwrap(); // now class 2 wins
        assert!(!spec.matches(&golden, &test));
    }

    #[test]
    fn exact_compare_detects_single_byte() {
        let golden = GlobalMemory::new(16);
        let mut test = GlobalMemory::new(16);
        let spec = CompareSpec::ExactRegion { offset: 4, len: 8 };
        assert!(spec.matches(&golden, &test));
        test.write_u32_host(0, 5).unwrap(); // outside region: ignored
        assert!(spec.matches(&golden, &test));
        test.write_u32_host(8, 1).unwrap(); // inside region
        assert!(!spec.matches(&golden, &test));
    }

    #[test]
    #[should_panic(expected = "integer code")]
    fn integer_codes_reject_float_precision() {
        build(Benchmark::Ccl, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    }
}
