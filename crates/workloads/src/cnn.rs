//! YOLO-like convolutional networks.
//!
//! Scaled-down stand-ins for Darknet's YOLOv2/YOLOv3: a stack of 3x3
//! same-padding convolutions with leaky-ReLU activations over a small
//! input image, followed by global average pooling into per-class scores.
//! The "v3" variant is deeper and wider — the paper's point is that v3's
//! higher accuracy makes it *less* fault-tolerant (a larger fraction of
//! output perturbations flips the classification), while v2 masks more.
//!
//! Convolution is emitted as dense FMA inner loops — the same mix as the
//! conv-as-GEMM lowering cuDNN/cuBLAS perform (">75% of YOLO operations
//! are matrix-multiplication-like", Section VI). The kernels are marked
//! `proprietary`, matching the paper's inability to instrument
//! library-backed YOLO with SASSIFI on Kepler.
//!
//! SDC detection uses [`CompareSpec::Classification`]: only faults that
//! change the argmax class count as errors.

use crate::prec::{host, PrecEmit};
use crate::{write_elem, Benchmark, CompareSpec, Scale, Workload};
use gpu_arch::{
    CmpOp, CodeGen, Dim, KernelBuilder, LaunchConfig, Operand, Precision, Pred, Reg, SpecialReg,
};
use gpu_sim::GlobalMemory;

fn r(i: u8) -> Reg {
    Reg(i)
}
fn imm(v: u32) -> Operand {
    Operand::Imm(v)
}

/// Image side (the feature maps stay this size through the network).
pub const IMG: u32 = 8;
/// Classes scored by the head.
pub const CLASSES: u32 = 8;
/// Leaky-ReLU negative slope (0.125: exactly representable in binary16).
pub const LEAK: f64 = 0.125;

/// Images processed per launch (one block each) — batching keeps the
/// paper-like occupancy for the CNN codes.
fn batch(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 2,
        Scale::Profile => 16,
    }
}

/// Network shape per YOLO version.
pub fn layer_channels(version: u32, scale: Scale) -> Vec<u32> {
    let width = match scale {
        Scale::Tiny => 2,
        _ => 4,
    };
    match version {
        2 => vec![1, width, width],
        _ => vec![1, width, width, width, width, width],
    }
}

/// Deterministic conv weight for (layer, out channel, in channel, ky, kx),
/// small and binary16-exact.
pub fn weight(layer: u32, co: u32, ci: u32, ky: u32, kx: u32) -> f64 {
    let h = layer
        .wrapping_mul(31)
        .wrapping_add(co.wrapping_mul(17))
        .wrapping_add(ci.wrapping_mul(13))
        .wrapping_add(ky.wrapping_mul(5))
        .wrapping_add(kx.wrapping_mul(3));
    ((h % 15) as f64 - 7.0) / 16.0
}

/// Input image pixel.
pub fn input_pixel(y: u32, x: u32) -> f64 {
    (((y.wrapping_mul(7).wrapping_add(x.wrapping_mul(3))) % 16) as f64) / 16.0
}

/// Class-head weight for (class, channel).
pub fn head_weight(class: u32, ch: u32) -> f64 {
    (((class.wrapping_mul(11).wrapping_add(ch.wrapping_mul(7)).wrapping_add(1)) % 13) as f64 - 6.0)
        / 8.0
}

/// Host reference: returns the class scores, computed with the kernel's
/// exact operation order and precision.
pub fn reference(version: u32, prec: Precision, scale: Scale) -> Vec<f64> {
    let q = |v: f64| host::quantize(prec, v);
    let chans = layer_channels(version, scale);
    let hw = (IMG * IMG) as usize;
    // act[ch][pixel]
    let mut act: Vec<Vec<f64>> =
        vec![(0..hw).map(|p| q(input_pixel(p as u32 / IMG, p as u32 % IMG))).collect()];
    let leak = q(LEAK);
    for l in 1..chans.len() {
        let (cin, cout) = (chans[l - 1], chans[l]);
        let mut next = vec![vec![0.0; hw]; cout as usize];
        for co in 0..cout {
            for y in 0..IMG {
                for x in 0..IMG {
                    let mut acc = 0.0;
                    for ci in 0..cin {
                        for ky in 0..3u32 {
                            for kx in 0..3u32 {
                                // Clamped (replicate) padding.
                                let sy = (y as i64 + ky as i64 - 1).clamp(0, IMG as i64 - 1) as u32;
                                let sx = (x as i64 + kx as i64 - 1).clamp(0, IMG as i64 - 1) as u32;
                                let w = q(weight(l as u32, co, ci, ky, kx));
                                let v = act[ci as usize][(sy * IMG + sx) as usize];
                                acc = host::fma(prec, w, v, acc);
                            }
                        }
                    }
                    // leaky ReLU: max(acc, leak*acc)
                    let scaled = host::mul(prec, leak, acc);
                    let a = if acc >= scaled || acc.is_nan() { acc } else { scaled };
                    next[co as usize][(y * IMG + x) as usize] = q(a);
                }
            }
        }
        act = next;
    }
    // Head: score[c] = sum over channels of head_weight * mean(activation).
    let last = chans[chans.len() - 1];
    let inv_hw = q(1.0 / hw as f64);
    let mut scores = vec![0.0; CLASSES as usize];
    for class in 0..CLASSES {
        let mut s = 0.0;
        for ch in 0..last {
            let mut sum = 0.0;
            for &a in &act[ch as usize][..hw] {
                sum = host::add(prec, sum, a);
            }
            let mean = host::mul(prec, sum, inv_hw);
            s = host::fma(prec, q(head_weight(class, ch)), mean, s);
        }
        scores[class as usize] = q(s);
    }
    scores
}

/// Build a YOLO-like workload (`version` 2 or 3).
pub fn yolo(version: u32, prec: Precision, scale: Scale) -> Workload {
    let chans = layer_channels(version, scale);
    let max_ch = *chans.iter().max().unwrap();
    let e = PrecEmit::new(prec);
    let elem = prec.size_bytes();
    let hw = IMG * IMG;
    let bench = if version == 2 { Benchmark::Yolov2 } else { Benchmark::Yolov3 };
    let name = bench.display_name(prec);
    let mut b = KernelBuilder::new(name.clone());
    b.proprietary();
    b.shared((version * 4096).max(8192)); // modeled library workspace

    // Memory layout: per-image activation buffers (max_ch * hw each,
    // batched), shared weights (per layer, cout*cin*9), head weights
    // (CLASSES*max_ch), per-image scores.
    let instances = batch(scale);
    let buf_stride = max_ch * hw * elem;
    let buf_a = 0u32;
    let buf_b = buf_a + buf_stride * instances;
    let mut w_bases = Vec::new();
    let mut cursor = buf_b + buf_stride * instances;
    for l in 1..chans.len() {
        w_bases.push(cursor);
        cursor += chans[l] * chans[l - 1] * 9 * elem;
    }
    let head_base = cursor;
    cursor += CLASSES * max_ch * elem;
    let score_base = cursor;
    cursor += CLASSES * elem * instances;

    // One block of IMG x IMG threads per image; thread = one pixel.
    b.s2r(r(0), SpecialReg::TidX); // x
    b.s2r(r(1), SpecialReg::TidY); // y
    b.s2r(r(45), SpecialReg::CtaidX); // image index
    b.imad(r(4), r(1).into(), imm(IMG), r(0).into()); // pixel index
    b.ldp(r(10), 0); // buf_a
    b.ldp(r(11), 1); // buf_b
    b.imad(r(10), r(45).into(), imm(buf_stride), r(10).into());
    b.imad(r(11), r(45).into(), imm(buf_stride), r(11).into());

    // Clamped neighbor pixel indices for the 3x3 window, hoisted: regs
    // 50..59 hold the 9 byte offsets (pixel*elem) of the window.
    for ky in 0..3u32 {
        for kx in 0..3u32 {
            b.iadd(r(6), r(1).into(), Operand::imm_i32(ky as i32 - 1));
            b.imax(r(6), r(6).into(), imm(0));
            b.imin(r(6), r(6).into(), imm(IMG - 1));
            b.iadd(r(7), r(0).into(), Operand::imm_i32(kx as i32 - 1));
            b.imax(r(7), r(7).into(), imm(0));
            b.imin(r(7), r(7).into(), imm(IMG - 1));
            b.imad(r(6), r(6).into(), imm(IMG), r(7).into());
            b.shl(r(50 + (ky * 3 + kx) as u8), r(6).into(), imm(e.shift()));
        }
    }

    e.mov_const(&mut b, r(40), LEAK);

    // Conv layers: layer l reads from src buffer, writes dst; ping-pong.
    for l in 1..chans.len() {
        let (cin, cout) = (chans[l - 1], chans[l]);
        let (src, dst) = if l % 2 == 1 { (r(10), r(11)) } else { (r(11), r(10)) };
        let w_base = w_bases[l - 1];
        for co in 0..cout {
            e.mov_const(&mut b, r(16), 0.0); // acc
            for ci in 0..cin {
                for k in 0..9u32 {
                    // activation at window offset k of channel ci
                    b.imul(r(8), Operand::Imm(ci), imm(hw * elem));
                    b.iadd(r(8), r(8).into(), r(50 + k as u8).into());
                    b.iadd(r(8), r(8).into(), src.into());
                    e.load_g(&mut b, r(20), r(8), 0);
                    // weight (uniform across threads)
                    let w_off = w_base + ((co * cin + ci) * 9 + k) * elem;
                    b.mov(r(9), imm(w_off));
                    e.load_g(&mut b, r(24), r(9), 0);
                    e.fma(&mut b, r(16), r(24).into(), r(20).into(), r(16).into());
                }
            }
            // leaky ReLU: out = max(acc, leak*acc) via compare + select.
            e.mul(&mut b, r(28), r(40).into(), r(16).into());
            e.setp(&mut b, Pred(0), CmpOp::Ge, r(16).into(), r(28).into());
            b.sel(r(30), r(16).into(), r(28).into(), Pred(0), false);
            if prec == Precision::Double {
                b.sel(r(31), r(17).into(), r(29).into(), Pred(0), false);
            }
            // store to dst[co*hw + pixel]
            b.imul(r(8), Operand::Imm(co), imm(hw * elem));
            b.shl(r(9), r(4).into(), imm(e.shift()));
            b.iadd(r(8), r(8).into(), r(9).into());
            b.iadd(r(8), r(8).into(), dst.into());
            e.store_g(&mut b, r(8), 0, r(30));
        }
        b.bar();
    }

    // Head: thread 0 computes the class scores (global average pool +
    // linear head). Other threads exit through the barrier-free tail.
    let last_buf = if (chans.len() - 1) % 2 == 1 { r(11) } else { r(10) };
    let last_ch = chans[chans.len() - 1];
    b.isetp(Pred(1), CmpOp::Ne, r(4).into(), imm(0));
    b.if_p(Pred(1)).bra("done");
    b.ldp(r(12), 2); // head_base
    b.ldp(r(13), 3); // score_base
    b.imad(r(13), r(45).into(), imm(CLASSES * elem), r(13).into());
    e.mov_const(&mut b, r(42), 1.0 / (hw as f64));
    for class in 0..CLASSES {
        e.mov_const(&mut b, r(16), 0.0); // score acc
        for ch in 0..last_ch {
            e.mov_const(&mut b, r(18), 0.0); // channel sum
            b.mov(r(5), imm(0)); // pixel loop
            let lbl = format!("pool_{class}_{ch}");
            b.label(lbl.clone());
            b.imul(r(8), Operand::Imm(ch), imm(hw * elem));
            b.shl(r(9), r(5).into(), imm(e.shift()));
            b.iadd(r(8), r(8).into(), r(9).into());
            b.iadd(r(8), r(8).into(), last_buf.into());
            e.load_g(&mut b, r(20), r(8), 0);
            e.add(&mut b, r(18), r(18).into(), r(20).into());
            b.iadd(r(5), r(5).into(), imm(1));
            b.isetp(Pred(2), CmpOp::Lt, r(5).into(), imm(hw));
            b.if_p(Pred(2)).bra(lbl);
            // mean = sum * (1/hw); score += head_w * mean
            e.mul(&mut b, r(18), r(18).into(), r(42).into());
            let hw_off = head_base + (class * max_ch + ch) * elem;
            b.mov(r(9), imm(hw_off));
            e.load_g(&mut b, r(24), r(9), 0);
            e.fma(&mut b, r(16), r(24).into(), r(18).into(), r(16).into());
        }
        e.store_g(&mut b, r(13), class * elem, r(16));
    }
    b.label("done");
    b.exit();

    let kernel = b.build().expect("yolo kernel");
    let mut mem = GlobalMemory::new(cursor);
    for inst in 0..instances {
        for y in 0..IMG {
            for x in 0..IMG {
                write_elem(
                    &mut mem,
                    prec,
                    buf_a + inst * buf_stride + (y * IMG + x) * elem,
                    input_pixel(y, x),
                );
            }
        }
    }
    for (li, l) in (1..chans.len()).enumerate() {
        let (cin, cout) = (chans[l - 1], chans[l]);
        for co in 0..cout {
            for ci in 0..cin {
                for ky in 0..3 {
                    for kx in 0..3 {
                        let off = w_bases[li] + ((co * cin + ci) * 9 + ky * 3 + kx) * elem;
                        write_elem(&mut mem, prec, off, weight(l as u32, co, ci, ky, kx));
                    }
                }
            }
        }
    }
    for class in 0..CLASSES {
        for ch in 0..max_ch {
            write_elem(
                &mut mem,
                prec,
                head_base + (class * max_ch + ch) * elem,
                head_weight(class, ch),
            );
        }
    }
    let launch = LaunchConfig::new_2d(
        Dim::d2(instances, 1),
        Dim::d2(IMG, IMG),
        vec![buf_a, buf_b, head_base, score_base],
    );
    Workload {
        name,
        benchmark: bench,
        precision: prec,
        codegen: CodeGen::Cuda10,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::Classification {
            offset: score_base,
            count: CLASSES,
            precision: prec,
        },
    }
}
