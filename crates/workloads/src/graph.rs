//! Integer codes: Needleman-Wunsch (wavefront DP), breadth-first search,
//! and connected-component labeling.
//!
//! These are the paper's "not optimized well for GPUs" codes: low IPC,
//! poor access patterns, heavy control flow (Section VII-A explains their
//! prediction error by exactly these properties).

use crate::{Benchmark, CompareSpec, Scale, Workload};
use gpu_arch::{
    CmpOp, CodeGenProfile, KernelBuilder, LaunchConfig, MemWidth, Operand, Precision, Pred, Reg,
    SpecialReg,
};
use gpu_sim::GlobalMemory;

fn r(i: u8) -> Reg {
    Reg(i)
}
fn imm(v: u32) -> Operand {
    Operand::Imm(v)
}
fn imi(v: i32) -> Operand {
    Operand::imm_i32(v)
}

// ---------------------------------------------------------------- NW ----

/// Match reward and gap penalty of the NW scoring scheme.
pub const NW_MATCH: i32 = 3;
/// Mismatch penalty.
pub const NW_MISMATCH: i32 = -1;
/// Gap penalty.
pub const NW_GAP: i32 = 2;

fn nw_len(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 16,
        Scale::Small => 32,
        Scale::Profile => 64,
    }
}

/// Sequence element (values 0..4, like nucleotide codes).
pub fn nw_seq(which: u32, i: u32) -> i32 {
    ((i.wrapping_mul(7).wrapping_add(which.wrapping_mul(5)).wrapping_add(3)) % 4) as i32
}

/// Host reference DP table ((m+1) x (m+1) scores).
pub fn nw_reference(m: u32) -> Vec<i32> {
    let w = m + 1;
    let mut dp = vec![0i32; (w * w) as usize];
    for i in 0..=m {
        dp[(i * w) as usize] = -(NW_GAP * i as i32);
        dp[i as usize] = -(NW_GAP * i as i32);
    }
    for i in 1..=m {
        for j in 1..=m {
            let sim = if nw_seq(0, i - 1) == nw_seq(1, j - 1) { NW_MATCH } else { NW_MISMATCH };
            let diag = dp[((i - 1) * w + j - 1) as usize] + sim;
            let up = dp[((i - 1) * w + j) as usize] - NW_GAP;
            let left = dp[(i * w + j - 1) as usize] - NW_GAP;
            dp[(i * w + j) as usize] = diag.max(up).max(left);
        }
    }
    dp
}

/// Needleman-Wunsch: one block of `m` threads sweeps the DP matrix by
/// anti-diagonals with a barrier per wave. Sequences are staged in shared
/// memory (Table I's NW shared footprint).
pub fn nw(profile: &CodeGenProfile, scale: Scale) -> Workload {
    let m = nw_len(scale);
    let w = m + 1;
    let name = Benchmark::Nw.display_name(Precision::Int32);
    let mut b = KernelBuilder::new(name.clone());
    // shared: seq0 at 0, seq1 at 4*m
    b.shared(8 * m);

    // params: [seq0_base, seq1_base, dp_base]
    b.s2r(r(0), SpecialReg::TidX); // thread t owns DP row t+1
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.ldp(r(12), 2);

    // Stage both sequences (thread t copies element t).
    b.shl(r(3), r(0).into(), imm(2));
    b.iadd(r(4), r(3).into(), r(10).into());
    b.ldg(MemWidth::W32, r(5), r(4), 0);
    b.sts(MemWidth::W32, r(3), 0, r(5));
    b.iadd(r(4), r(3).into(), r(11).into());
    b.ldg(MemWidth::W32, r(5), r(4), 0);
    b.sts(MemWidth::W32, r(3), 4 * m, r(5));

    // Initialize DP borders: thread t writes dp[0][t+1] and dp[t+1][0];
    // thread 0 additionally writes dp[0][0] (done by every thread's
    // identical formula for index 0 is avoided by using t+1).
    b.iadd(r(6), r(0).into(), imm(1)); // t+1
    b.imul(r(7), r(6).into(), imi(-(NW_GAP)));
    // dp[0][t+1]
    b.shl(r(8), r(6).into(), imm(2));
    b.iadd(r(8), r(8).into(), r(12).into());
    b.stg(MemWidth::W32, r(8), 0, r(7));
    // dp[t+1][0]
    b.imul(r(8), r(6).into(), imm(w));
    b.shl(r(8), r(8).into(), imm(2));
    b.iadd(r(8), r(8).into(), r(12).into());
    b.stg(MemWidth::W32, r(8), 0, r(7));
    // dp[0][0] = 0 (every thread stores the same zero: idempotent)
    b.mov(r(7), imm(0));
    b.stg(MemWidth::W32, r(12), 0, r(7));
    b.bar();

    // Wave sweep: wave d = 0 .. 2m-2; thread t computes cell
    // (i, j) = (t+1, d - t + 1) when 0 <= d - t < m.
    b.mov(r(2), imm(0)); // d
    b.label("wave");
    b.iadd(r(9), r(2).into(), imm(0));
    // j0 = d - t ; valid iff 0 <= j0 < m
    b.imul(r(13), r(0).into(), imi(-1));
    b.iadd(r(9), r(9).into(), r(13).into()); // d - t
    b.isetp(Pred(0), CmpOp::Ge, r(9).into(), imm(0));
    b.isetp(Pred(1), CmpOp::Lt, r(9).into(), imm(m));
    // Inactive threads branch straight to the barrier.
    b.if_not_p(Pred(0)).bra("wavebar");
    b.if_not_p(Pred(1)).bra("wavebar");
    // i = t+1 (r6), j = d - t + 1
    b.iadd(r(9), r(9).into(), imm(1)); // j
                                       // sim = seq0[i-1] == seq1[j-1] ? MATCH : MISMATCH (from shared)
    b.shl(r(13), r(0).into(), imm(2)); // (i-1) = t
    b.lds(MemWidth::W32, r(14), r(13), 0);
    b.iadd(r(13), r(9).into(), imi(-1));
    b.shl(r(13), r(13).into(), imm(2));
    b.lds(MemWidth::W32, r(15), r(13), 4 * m);
    b.isetp(Pred(2), CmpOp::Eq, r(14).into(), r(15).into());
    b.mov(r(16), imi(NW_MISMATCH));
    b.sel(r(16), imi(NW_MATCH), r(16).into(), Pred(2), false);
    // diag/up/left loads
    b.iadd(r(13), r(6).into(), imi(-1)); // i-1
    b.imad(r(14), r(13).into(), imm(w), r(9).into()); // (i-1)*w + j
    b.shl(r(15), r(14).into(), imm(2));
    b.iadd(r(15), r(15).into(), r(12).into());
    b.ldg(MemWidth::W32, r(17), r(15), 0); // up
                                           // diag = (i-1)*w + j - 1
    b.iadd(r(14), r(14).into(), imi(-1));
    b.shl(r(15), r(14).into(), imm(2));
    b.iadd(r(15), r(15).into(), r(12).into());
    b.ldg(MemWidth::W32, r(18), r(15), 0); // diag
                                           // left = i*w + j - 1
    b.imad(r(14), r(6).into(), imm(w), r(9).into());
    b.iadd(r(14), r(14).into(), imi(-1));
    b.shl(r(15), r(14).into(), imm(2));
    b.iadd(r(15), r(15).into(), r(12).into());
    b.ldg(MemWidth::W32, r(19), r(15), 0); // left
                                           // score = max(diag+sim, up-GAP, left-GAP)
    b.iadd(r(18), r(18).into(), r(16).into());
    b.iadd(r(17), r(17).into(), imi(-(NW_GAP)));
    b.iadd(r(19), r(19).into(), imi(-(NW_GAP)));
    b.imax(r(18), r(18).into(), r(17).into());
    b.imax(r(18), r(18).into(), r(19).into());
    if profile.redundant_moves {
        b.mov(r(20), r(18).into());
    }
    // store dp[i][j]
    b.imad(r(14), r(6).into(), imm(w), r(9).into());
    b.shl(r(15), r(14).into(), imm(2));
    b.iadd(r(15), r(15).into(), r(12).into());
    b.stg(MemWidth::W32, r(15), 0, r(18));
    b.label("wavebar");
    b.bar();
    b.iadd(r(2), r(2).into(), imm(1));
    b.isetp(Pred(3), CmpOp::Lt, r(2).into(), imm(2 * m - 1));
    b.if_p(Pred(3)).bra("wave");
    b.exit();

    let kernel = b.build().expect("nw kernel");
    let seq0_base = 0u32;
    let seq1_base = 4 * m;
    let dp_base = 8 * m;
    let mut mem = GlobalMemory::new(8 * m + 4 * w * w);
    for i in 0..m {
        mem.write_u32_host(seq0_base + 4 * i, nw_seq(0, i) as u32)
            .expect("NW sequence buffer covers every element");
        mem.write_u32_host(seq1_base + 4 * i, nw_seq(1, i) as u32)
            .expect("NW sequence buffer covers every element");
    }
    let launch = LaunchConfig::new(1, m, vec![seq0_base, seq1_base, dp_base]);
    Workload {
        name,
        benchmark: Benchmark::Nw,
        precision: Precision::Int32,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: dp_base, len: 4 * w * w },
    }
}

// --------------------------------------------------------------- BFS ----

fn bfs_nodes(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 32,
        Scale::Small => 64,
        Scale::Profile => 128,
    }
}

/// Independent problem instances per launch (one block each).
fn batch(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 2,
        Scale::Profile => 16,
    }
}

/// Deterministic sparse digraph: each node has 3 out-edges.
pub fn bfs_edges(n: u32, v: u32) -> [u32; 3] {
    [(v + 1) % n, (v.wrapping_mul(3).wrapping_add(1)) % n, (v.wrapping_mul(7).wrapping_add(5)) % n]
}

/// Host reference BFS levels from node 0 (`i32::MAX` = unreachable).
pub fn bfs_reference(n: u32, max_levels: u32) -> Vec<i32> {
    let mut level = vec![i32::MAX; n as usize];
    level[0] = 0;
    for cur in 0..max_levels as i32 {
        for v in 0..n {
            if level[v as usize] == cur {
                for nb in bfs_edges(n, v) {
                    if level[nb as usize] == i32::MAX {
                        level[nb as usize] = cur + 1;
                    }
                }
            }
        }
    }
    level
}

/// Level-synchronous BFS: one thread per node, barrier per level, fixed
/// level count (covers the graph diameter). No shared memory (Table I:
/// BFS 0 B).
pub fn bfs(profile: &CodeGenProfile, scale: Scale) -> Workload {
    let n = bfs_nodes(scale);
    let max_levels = 8u32;
    let name = Benchmark::Bfs.display_name(Precision::Int32);
    let mut b = KernelBuilder::new(name.clone());

    // params: [edges_base, level_base]; edges laid out v*3..v*3+3. Block
    // bx searches its own graph instance.
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.imad(r(10), r(1).into(), imm(4 * 3 * n), r(10).into());
    b.imad(r(11), r(1).into(), imm(4 * n), r(11).into());
    // own level address
    b.shl(r(3), r(0).into(), imm(2));
    b.iadd(r(3), r(3).into(), r(11).into());

    b.mov(r(2), imm(0)); // current level
    b.label("levelloop");
    b.ldg(MemWidth::W32, r(4), r(3), 0); // my level
    b.isetp(Pred(0), CmpOp::Ne, r(4).into(), r(2).into());
    b.if_p(Pred(0)).bra("levelbar");
    // Expand my 3 neighbors.
    for k in 0..3u32 {
        b.imad(r(5), r(0).into(), imm(3), imm(k));
        b.shl(r(5), r(5).into(), imm(2));
        b.iadd(r(5), r(5).into(), r(10).into());
        b.ldg(MemWidth::W32, r(6), r(5), 0); // neighbor id
        b.shl(r(7), r(6).into(), imm(2));
        b.iadd(r(7), r(7).into(), r(11).into());
        b.ldg(MemWidth::W32, r(8), r(7), 0); // neighbor level
                                             // if unreachable, set to cur+1
        b.isetp(Pred(1), CmpOp::Eq, r(8).into(), imi(i32::MAX));
        b.iadd(r(9), r(2).into(), imm(1));
        b.sel(r(9), r(9).into(), r(8).into(), Pred(1), false);
        if profile.redundant_moves {
            b.mov(r(13), r(9).into());
        }
        b.stg(MemWidth::W32, r(7), 0, r(9));
    }
    b.label("levelbar");
    b.bar();
    b.iadd(r(2), r(2).into(), imm(1));
    b.isetp(Pred(2), CmpOp::Lt, r(2).into(), imm(max_levels));
    b.if_p(Pred(2)).bra("levelloop");
    b.exit();

    let kernel = b.build().expect("bfs kernel");
    let instances = batch(scale);
    let edges_base = 0u32;
    let level_base = 4 * 3 * n * instances;
    let mut mem = GlobalMemory::new((4 * 3 * n + 4 * n) * instances);
    for inst in 0..instances {
        for v in 0..n {
            for (k, nb) in bfs_edges(n, v).into_iter().enumerate() {
                mem.write_u32_host(edges_base + 4 * (inst * 3 * n + v * 3 + k as u32), nb)
                    .expect("BFS edge buffer covers every vertex");
            }
            mem.write_u32_host(
                level_base + 4 * (inst * n + v),
                if v == 0 { 0 } else { i32::MAX as u32 },
            )
            .expect("BFS level buffer covers every vertex");
        }
    }
    let launch = LaunchConfig::new(instances, n, vec![edges_base, level_base]);
    Workload {
        name,
        benchmark: Benchmark::Bfs,
        precision: Precision::Int32,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: level_base, len: 4 * n * instances },
    }
}

// --------------------------------------------------------------- CCL ----

fn ccl_dim(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 16,
        Scale::Profile => 32,
    }
}

/// Binary image: a deterministic blob pattern.
pub fn ccl_pixel(i: u32, j: u32) -> u32 {
    u32::from((i.wrapping_mul(5).wrapping_add(j.wrapping_mul(3))) % 7 < 4)
}

/// Host reference label propagation (same fixed iteration count as the
/// kernel).
pub fn ccl_reference(n: u32, iters: u32) -> Vec<i32> {
    let px: Vec<u32> = (0..n * n).map(|idx| ccl_pixel(idx / n, idx % n)).collect();
    let mut label: Vec<i32> =
        (0..n * n).map(|idx| if px[idx as usize] == 1 { idx as i32 } else { -1 }).collect();
    for _ in 0..iters {
        let snap = label.clone();
        for i in 0..n {
            for j in 0..n {
                let idx = (i * n + j) as usize;
                if px[idx] == 0 {
                    continue;
                }
                let mut best = snap[idx];
                // Clamped 4-neighborhood, foreground only.
                let (im1, ip1) = (i.saturating_sub(1), (i + 1).min(n - 1));
                let (jm1, jp1) = (j.saturating_sub(1), (j + 1).min(n - 1));
                for (ni, nj) in [(im1, j), (ip1, j), (i, jm1), (i, jp1)] {
                    let nidx = (ni * n + nj) as usize;
                    if px[nidx] == 1 && snap[nidx] < best {
                        best = snap[nidx];
                    }
                }
                label[idx] = best;
            }
        }
    }
    label
}

/// Iterations of label propagation the kernel performs.
pub const CCL_ITERS: u32 = 8;

/// Connected-component labeling by iterative min-propagation: one thread
/// per pixel, snapshot semantics via double-buffering in global memory.
pub fn ccl(profile: &CodeGenProfile, scale: Scale) -> Workload {
    let n = ccl_dim(scale);
    let name = Benchmark::Ccl.display_name(Precision::Int32);
    let mut b = KernelBuilder::new(name.clone());
    // A tiny shared scratch (Table I: CCL uses 123 B) for the block's
    // "changed" flag; modeled but benign.
    b.shared(128);

    // params: [px_base, a_base, b_base]; labels ping-pong a -> b -> a...
    // Block bx labels its own image instance.
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::TidY);
    b.s2r(r(2), SpecialReg::CtaidX);
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.ldp(r(12), 2);
    b.imad(r(10), r(2).into(), imm(4 * n * n), r(10).into());
    b.imad(r(11), r(2).into(), imm(4 * n * n), r(11).into());
    b.imad(r(12), r(2).into(), imm(4 * n * n), r(12).into());
    // own linear index and byte offset
    b.imad(r(4), r(1).into(), imm(n), r(0).into());
    b.shl(r(5), r(4).into(), imm(2));

    // my pixel
    b.iadd(r(6), r(5).into(), r(10).into());
    b.ldg(MemWidth::W32, r(14), r(6), 0);

    // Clamped neighbor linear offsets (constant across iterations).
    // north (max(i-1,0))*n + j
    b.iadd(r(7), r(1).into(), imi(-1));
    b.imax(r(7), r(7).into(), imm(0));
    b.imad(r(7), r(7).into(), imm(n), r(0).into());
    b.shl(r(20), r(7).into(), imm(2));
    // south
    b.iadd(r(7), r(1).into(), imm(1));
    b.imin(r(7), r(7).into(), imm(n - 1));
    b.imad(r(7), r(7).into(), imm(n), r(0).into());
    b.shl(r(21), r(7).into(), imm(2));
    // west
    b.iadd(r(7), r(0).into(), imi(-1));
    b.imax(r(7), r(7).into(), imm(0));
    b.imad(r(7), r(1).into(), imm(n), r(7).into());
    b.shl(r(22), r(7).into(), imm(2));
    // east
    b.iadd(r(7), r(0).into(), imm(1));
    b.imin(r(7), r(7).into(), imm(n - 1));
    b.imad(r(7), r(1).into(), imm(n), r(7).into());
    b.shl(r(23), r(7).into(), imm(2));

    b.mov(r(2), imm(0)); // iteration
    b.label("iterloop");
    // Read from src (even iter: a, odd: b): select base by parity.
    b.and(r(8), r(2).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Eq, r(8).into(), imm(0));
    b.sel(r(16), r(11).into(), r(12).into(), Pred(0), false); // src
    b.sel(r(17), r(12).into(), r(11).into(), Pred(0), false); // dst

    // best = my label
    b.iadd(r(6), r(5).into(), r(16).into());
    b.ldg(MemWidth::W32, r(18), r(6), 0);
    // For each neighbor: load pixel + label; min if foreground.
    for nb in 0..4u8 {
        let off = r(20 + nb);
        b.iadd(r(6), off.into(), r(10).into());
        b.ldg(MemWidth::W32, r(26), r(6), 0); // neighbor pixel
        b.iadd(r(6), off.into(), r(16).into());
        b.ldg(MemWidth::W32, r(27), r(6), 0); // neighbor label
        b.isetp(Pred(1), CmpOp::Eq, r(26).into(), imm(1));
        b.imin(r(28), r(27).into(), r(18).into());
        b.sel(r(18), r(28).into(), r(18).into(), Pred(1), false);
    }
    // Background pixels keep -1.
    b.isetp(Pred(2), CmpOp::Eq, r(14).into(), imm(1));
    b.sel(r(18), r(18).into(), imi(-1), Pred(2), false);
    if profile.redundant_moves {
        b.mov(r(29), r(18).into());
    }
    b.bar();
    b.iadd(r(6), r(5).into(), r(17).into());
    b.stg(MemWidth::W32, r(6), 0, r(18));
    b.bar();
    b.iadd(r(2), r(2).into(), imm(1));
    b.isetp(Pred(3), CmpOp::Lt, r(2).into(), imm(CCL_ITERS));
    b.if_p(Pred(3)).bra("iterloop");
    b.exit();

    let kernel = b.build().expect("ccl kernel");
    let instances = batch(scale);
    let px_base = 0u32;
    let a_base = 4 * n * n * instances;
    let b_base = 8 * n * n * instances;
    let mut mem = GlobalMemory::new(12 * n * n * instances);
    for inst in 0..instances {
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let px = ccl_pixel(i, j);
                mem.write_u32_host(px_base + 4 * (inst * n * n + idx), px)
                    .expect("CCL pixel buffer covers every pixel");
                let init = if px == 1 { idx as i32 } else { -1 };
                mem.write_u32_host(a_base + 4 * (inst * n * n + idx), init as u32)
                    .expect("CCL label buffer covers every pixel");
            }
        }
    }
    // CCL_ITERS is even, so the final labels land back in buffer a... the
    // ping-pong writes a->b on even iterations, so after 8 iterations the
    // last write targeted a (iteration 7 is odd: src b, dst a).
    let launch = LaunchConfig::new_2d(
        gpu_arch::Dim::d2(instances, 1),
        gpu_arch::Dim::d2(n, n),
        vec![px_base, a_base, b_base],
    );
    Workload {
        name,
        benchmark: Benchmark::Ccl,
        precision: Precision::Int32,
        codegen: profile.era,
        kernel,
        launch,
        memory: mem,
        compare: CompareSpec::ExactRegion { offset: a_base, len: 4 * n * n * instances },
    }
}
