//! Golden-output validation: every workload must complete fault-free and
//! match its bit-exact host reference.

use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::ExecStatus;
use workloads::{build, read_elem, Benchmark, Scale, Workload};

fn run_ok(w: &Workload, device: &DeviceModel) -> gpu_sim::Executed {
    let out = w.golden(device);
    assert_eq!(out.status, ExecStatus::Completed, "{} did not complete", w.name);
    out
}

fn check_region(w: &Workload, out: &gpu_sim::Executed, offset: u32, expect: &[f64]) {
    let elem = w.precision.size_bytes();
    for (i, &e) in expect.iter().enumerate() {
        let got = read_elem(&out.memory, w.precision, offset + i as u32 * elem);
        assert!(
            got == e || (got.is_nan() && e.is_nan()),
            "{}: element {i}: got {got}, expected {e}",
            w.name
        );
    }
}

fn out_offset(w: &Workload) -> u32 {
    match &w.compare {
        workloads::CompareSpec::ExactRegion { offset, .. } => *offset,
        workloads::CompareSpec::Classification { offset, .. } => *offset,
    }
}

// ------------------------------------------------------------- matmul ---

fn mxm_reference(prec: Precision, n: u32) -> Vec<f64> {
    use workloads::prec_host::{fma, quantize};
    let a = |i: u32, j: u32| quantize(prec, workloads::matmul_input(0, i, j));
    let b = |i: u32, j: u32| quantize(prec, workloads::matmul_input(1, i, j));
    let mut c = vec![0.0; (n * n) as usize];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc = fma(prec, a(i, k), b(k, j), acc);
            }
            c[(i * n + j) as usize] = acc;
        }
    }
    c
}

#[test]
fn mxm_all_precisions_match_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    let volta = DeviceModel::named("v100-sim");
    for (prec, device) in
        [(Precision::Single, &kepler), (Precision::Half, &volta), (Precision::Double, &volta)]
    {
        for cg in [CodeGen::Cuda7, CodeGen::Cuda10] {
            let w = build(Benchmark::Mxm, prec, cg, Scale::Tiny);
            let out = run_ok(&w, device);
            check_region(&w, &out, out_offset(&w), &mxm_reference(prec, 16));
        }
    }
}

#[test]
fn gemm_matches_mxm_results() {
    // The tiled GEMM computes the same product as the naive kernel when
    // the reduction order coincides (tiles iterate k in order).
    let device = DeviceModel::named("v100-sim");
    for prec in [Precision::Single, Precision::Double, Precision::Half] {
        let w = build(Benchmark::Gemm, prec, CodeGen::Cuda10, Scale::Tiny);
        let out = run_ok(&w, &device);
        check_region(&w, &out, out_offset(&w), &mxm_reference(prec, 16));
    }
}

#[test]
fn gemm_mma_matches_tensor_reference() {
    use softfloat::F16;
    let device = DeviceModel::named("v100-sim");
    for prec in [Precision::Half, Precision::Single] {
        let w = build(Benchmark::GemmMma, prec, CodeGen::Cuda10, Scale::Tiny);
        let out = run_ok(&w, &device);
        // Reference: f16 inputs, f32 accumulate per 16-wide fragment with
        // a (16x16x16) MMA per step; HMMA rounds the accumulator to f16
        // after each MMA.
        let n = 16u32;
        let q = |v: f64| {
            if prec == Precision::Half {
                F16::from_f64(v).to_f64()
            } else {
                v as f32 as f64
            }
        };
        let a = |i: u32, j: u32| F16::from_f64(q(workloads::matmul_input(0, i, j))).to_f32();
        let b = |i: u32, j: u32| F16::from_f64(q(workloads::matmul_input(1, i, j))).to_f32();
        let elem = prec.size_bytes();
        let c_base = out_offset(&w);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a(i, k) * b(k, j);
                }
                let expect =
                    if prec == Precision::Half { F16::from_f32(acc).to_f64() } else { acc as f64 };
                let got = read_elem(&out.memory, prec, c_base + (i * n + j) * elem);
                assert_eq!(got, expect, "{} element ({i},{j})", w.name);
            }
        }
    }
}

// ------------------------------------------------------------ stencil ---

#[test]
fn hotspot_matches_reference() {
    let volta = DeviceModel::named("v100-sim");
    for prec in [Precision::Half, Precision::Single, Precision::Double] {
        for cg in [CodeGen::Cuda7, CodeGen::Cuda10] {
            let w = build(Benchmark::Hotspot, prec, cg, Scale::Tiny);
            let out = run_ok(&w, &volta);
            let expect = workloads::hotspot_reference(prec, 8);
            check_region(&w, &out, out_offset(&w), &expect);
        }
    }
}

// --------------------------------------------------------------- lava ---

#[test]
fn lava_matches_reference() {
    let volta = DeviceModel::named("v100-sim");
    for prec in [Precision::Half, Precision::Single, Precision::Double] {
        let w = build(Benchmark::Lava, prec, CodeGen::Cuda10, Scale::Tiny);
        let out = run_ok(&w, &volta);
        let expect = workloads::lava_reference(prec, 2);
        check_region(&w, &out, out_offset(&w), &expect);
    }
}

// ------------------------------------------------------------- linalg ---

#[test]
fn gaussian_matches_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    for cg in [CodeGen::Cuda7, CodeGen::Cuda10] {
        let w = build(Benchmark::Gaussian, Precision::Single, cg, Scale::Tiny);
        let out = run_ok(&w, &kepler);
        let expect = workloads::gaussian_reference(Precision::Single, 8);
        check_region(&w, &out, out_offset(&w), &expect);
    }
}

#[test]
fn lud_matches_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Lud, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect = workloads::lud_reference(Precision::Single, 8);
    check_region(&w, &out, out_offset(&w), &expect);
}

// -------------------------------------------------------------- graph ---

#[test]
fn nw_matches_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Nw, Precision::Int32, CodeGen::Cuda10, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect: Vec<f64> = workloads::nw_reference(16).into_iter().map(|v| v as f64).collect();
    check_region(&w, &out, out_offset(&w), &expect);
}

#[test]
fn bfs_matches_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Bfs, Precision::Int32, CodeGen::Cuda7, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect: Vec<f64> = workloads::bfs_reference(32, 8).into_iter().map(|v| v as f64).collect();
    check_region(&w, &out, out_offset(&w), &expect);
}

#[test]
fn ccl_matches_reference() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Ccl, Precision::Int32, CodeGen::Cuda10, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect: Vec<f64> = workloads::ccl_reference(8, 8).into_iter().map(|v| v as f64).collect();
    check_region(&w, &out, out_offset(&w), &expect);
}

// --------------------------------------------------------------- sort ---

#[test]
fn mergesort_sorts() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mergesort, Precision::Int32, CodeGen::Cuda10, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect: Vec<f64> =
        workloads::mergesort_reference(64).into_iter().map(|v| v as f64).collect();
    check_region(&w, &out, out_offset(&w), &expect);
}

#[test]
fn quicksort_sorts_chunks() {
    let kepler = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Quicksort, Precision::Int32, CodeGen::Cuda7, Scale::Tiny);
    let out = run_ok(&w, &kepler);
    let expect: Vec<f64> =
        workloads::quicksort_reference(8).into_iter().map(|v| v as f64).collect();
    check_region(&w, &out, out_offset(&w), &expect);
}

// ---------------------------------------------------------------- cnn ---

#[test]
fn yolo_scores_match_reference() {
    let volta = DeviceModel::named("v100-sim");
    for version in [2u32, 3] {
        for prec in [Precision::Half, Precision::Single] {
            let bench = if version == 2 { Benchmark::Yolov2 } else { Benchmark::Yolov3 };
            let w = build(bench, prec, CodeGen::Cuda10, Scale::Tiny);
            let out = run_ok(&w, &volta);
            let expect = workloads::yolo_reference(version, prec, Scale::Tiny);
            check_region(&w, &out, out_offset(&w), &expect);
        }
    }
}

// -------------------------------------------------------------- suite ---

#[test]
fn kepler_suite_builds_and_completes() {
    let kepler = DeviceModel::named("k40c-sim");
    for w in workloads::kepler_suite(CodeGen::Cuda7, Scale::Tiny) {
        let out = w.golden(&kepler);
        assert_eq!(out.status, ExecStatus::Completed, "{}", w.name);
        assert!(out.counts.total > 0, "{}", w.name);
        // Self-comparison always matches.
        assert!(w.output_matches(&out, &out), "{}", w.name);
    }
}

#[test]
fn volta_suite_builds_and_completes() {
    let volta = DeviceModel::named("v100-sim");
    for w in workloads::volta_suite(Scale::Tiny) {
        let out = w.golden(&volta);
        assert_eq!(out.status, ExecStatus::Completed, "{}", w.name);
        assert!(w.output_matches(&out, &out), "{}", w.name);
    }
}
