//! Systematic variant coverage: every (benchmark, precision, codegen)
//! combination that `build` accepts must construct, validate, complete
//! fault-free on its device, and be self-consistent under the Target
//! trait. Codegen variants of the same source must produce the *same
//! output* (optimizations cannot change semantics).

use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::ExecStatus;
use workloads::{build, read_elem, Benchmark, CompareSpec, Scale, Workload};

const FP_BENCHES: [Benchmark; 7] = [
    Benchmark::Mxm,
    Benchmark::Gemm,
    Benchmark::Hotspot,
    Benchmark::Lava,
    Benchmark::Gaussian,
    Benchmark::Lud,
    Benchmark::Yolov2,
];

const INT_BENCHES: [Benchmark; 5] =
    [Benchmark::Nw, Benchmark::Bfs, Benchmark::Ccl, Benchmark::Mergesort, Benchmark::Quicksort];

fn out_region(w: &Workload) -> (u32, u32, Precision) {
    match w.compare {
        CompareSpec::ExactRegion { offset, len } => (offset, len, w.precision),
        CompareSpec::Classification { offset, count, precision } => {
            (offset, count * precision.size_bytes(), precision)
        }
    }
}

#[test]
fn every_fp_variant_completes_on_volta() {
    let volta = DeviceModel::named("v100-sim");
    for bench in FP_BENCHES {
        for precision in [Precision::Half, Precision::Single, Precision::Double] {
            for codegen in [CodeGen::Cuda7, CodeGen::Cuda10] {
                let w = build(bench, precision, codegen, Scale::Tiny);
                let out = w.golden(&volta);
                assert_eq!(out.status, ExecStatus::Completed, "{} {codegen:?}", w.name);
                assert!(out.counts.total > 0);
            }
        }
    }
}

#[test]
fn every_int_variant_completes_on_kepler() {
    let kepler = DeviceModel::named("k40c-sim");
    for bench in INT_BENCHES {
        for codegen in [CodeGen::Cuda7, CodeGen::Cuda10] {
            let w = build(bench, Precision::Int32, codegen, Scale::Tiny);
            let out = w.golden(&kepler);
            assert_eq!(out.status, ExecStatus::Completed, "{} {codegen:?}", w.name);
        }
    }
}

#[test]
fn codegen_variants_compute_identical_outputs() {
    // The CUDA 7 and CUDA 10 back ends emit different instruction streams
    // for the same source; semantics must not change.
    let kepler = DeviceModel::named("k40c-sim");
    for bench in [
        Benchmark::Mxm,
        Benchmark::Hotspot,
        Benchmark::Gaussian,
        Benchmark::Lud,
        Benchmark::Nw,
        Benchmark::Ccl,
        Benchmark::Mergesort,
        Benchmark::Quicksort,
        Benchmark::Bfs,
        Benchmark::Lava,
    ] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w7 = build(bench, precision, CodeGen::Cuda7, Scale::Tiny);
        let w10 = build(bench, precision, CodeGen::Cuda10, Scale::Tiny);
        let o7 = w7.golden(&kepler);
        let o10 = w10.golden(&kepler);
        let (off, len, prec) = out_region(&w10);
        let elem = prec.size_bytes();
        for i in 0..(len / elem) {
            let a = read_elem(&o7.memory, prec, off + i * elem);
            let b = read_elem(&o10.memory, prec, off + i * elem);
            assert!(
                a == b || (a.is_nan() && b.is_nan()),
                "{}: element {i}: cu7 {a} vs cu10 {b}",
                w10.name
            );
        }
    }
}

#[test]
fn scales_are_ordered_by_work() {
    let kepler = DeviceModel::named("k40c-sim");
    for bench in [Benchmark::Mxm, Benchmark::Hotspot, Benchmark::Mergesort] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let tiny = build(bench, precision, CodeGen::Cuda10, Scale::Tiny).golden(&kepler);
        let small = build(bench, precision, CodeGen::Cuda10, Scale::Small).golden(&kepler);
        let profile = build(bench, precision, CodeGen::Cuda10, Scale::Profile).golden(&kepler);
        assert!(tiny.counts.total < small.counts.total, "{bench:?}");
        assert!(small.counts.total < profile.counts.total, "{bench:?}");
    }
}

#[test]
fn proprietary_flags_cover_library_codes_only() {
    for bench in FP_BENCHES.into_iter().chain(INT_BENCHES) {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w = build(bench, precision, CodeGen::Cuda10, Scale::Tiny);
        let expect = matches!(
            bench,
            Benchmark::Gemm | Benchmark::GemmMma | Benchmark::Yolov2 | Benchmark::Yolov3
        );
        assert_eq!(w.kernel.proprietary, expect, "{}", w.name);
    }
}

#[test]
fn table1_footprints_are_stable() {
    // Regression pin for the Table I resource columns (campaign scale).
    let cases = [
        (Benchmark::Gemm, Precision::Single, 134u16),
        (Benchmark::Gemm, Precision::Double, 234),
        (Benchmark::Lava, Precision::Single, 255),
    ];
    for (bench, precision, regs) in cases {
        let w = build(bench, precision, CodeGen::Cuda10, Scale::Small);
        assert_eq!(w.kernel.regs_per_thread, regs, "{}", w.name);
    }
    let qs = build(Benchmark::Quicksort, Precision::Int32, CodeGen::Cuda10, Scale::Small);
    assert_eq!(qs.kernel.shared_bytes, 328);
}

#[test]
fn workload_names_are_unique_within_suites() {
    use std::collections::HashSet;
    let mut names = HashSet::new();
    for w in workloads::kepler_suite(CodeGen::Cuda7, Scale::Tiny) {
        assert!(names.insert(w.name.clone()), "duplicate {}", w.name);
    }
    names.clear();
    for w in workloads::volta_suite(Scale::Tiny) {
        assert!(names.insert(w.name.clone()), "duplicate {}", w.name);
    }
}
