//! Regression pins for the predecode refactor.
//!
//! The decode layer (`gpu_arch::decode`) replaced the engine's per-tick
//! `match ins.op` classification with table lookups over `InstrMeta`, and
//! the injector/profiler/sass-analysis private classification copies with
//! the same shared metadata. That refactor is only sound if it is
//! *bit-identical* end-to-end: same `FaultPlan` dyn-instruction
//! numbering, same `SiteCounts` populations, same injector RNG draws,
//! same campaign tallies. These tests pin concrete pre-refactor values
//! (captured on the seed revision, before the decode layer existed) so
//! any drift fails loudly instead of silently skewing AVF.

#![allow(clippy::unwrap_used)]

use campaign::{Budget, Campaign, SnapshotPolicy};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::{RunOptions, Target};
use injector::{Avf, HiddenAvf, Injector};
use workloads::{build, Benchmark, Scale};

/// FNV-1a over a byte stream: a stable, dependency-free digest for
/// pinning vectors of counters without pasting thousands of values.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_u64s(vals: impl IntoIterator<Item = u64>) -> u64 {
    fnv1a(vals.into_iter().flat_map(u64::to_le_bytes))
}

#[test]
fn campaign_tallies_pinned_mxm_sassifi_k40c() {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
    let (result, run) = Campaign::new(Avf::new(Injector::Sassifi), &w, &device)
        .budget(Budget::fixed(160).seed(12021))
        .run_full()
        .unwrap();
    // Pinned on the pre-decode engine; bit-identical RNG draw order and
    // site populations are required to reproduce these tallies.
    assert_eq!(run.trials, 160);
    assert_eq!(
        (result.counts.sdc, result.counts.due, result.counts.masked),
        (103, 39, 18),
        "campaign tallies drifted (Sassifi/k40c/mxm_f32_tiny seed 12021)"
    );
}

#[test]
fn campaign_tallies_pinned_hotspot_nvbitfi_v100() {
    let device = DeviceModel::named("v100-sim");
    let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
    let (result, run) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(160).seed(12021))
        .run_full()
        .unwrap();
    assert_eq!(run.trials, 160);
    assert_eq!(
        (result.counts.sdc, result.counts.due, result.counts.masked),
        (52, 66, 42),
        "campaign tallies drifted (NvBitFi/v100/hotspot_f16_tiny seed 12021)"
    );
}

/// Static-resolution pruning must be invisible in the tallies: the
/// pinned hotspot campaign reproduces its exact pre-verdict tallies with
/// pruning on, at any worker count, while strictly reducing the number
/// of *simulated* trials. A single mislabeled proof (a consequential
/// fault resolved Masked, or a non-faulting flip resolved DUE) shifts a
/// tally and fails this pin.
#[test]
fn pruned_campaign_tallies_pinned_hotspot_nvbitfi_v100_any_workers() {
    let device = DeviceModel::named("v100-sim");
    let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
    for workers in [1usize, 4] {
        let (result, run) = Campaign::new(Avf::new_pruned(Injector::NvBitFi), &w, &device)
            .budget(Budget::fixed(160).seed(12021))
            .workers(workers)
            .run_full()
            .unwrap();
        assert_eq!(run.trials, 160);
        assert_eq!(
            (result.counts.sdc, result.counts.due, result.counts.masked),
            (52, 66, 42),
            "pruned tallies drifted (NvBitFi/v100/hotspot_f16_tiny seed 12021, workers={workers})"
        );
        assert!(
            run.executed.total() < 160,
            "pruning resolved nothing statically (workers={workers})"
        );
    }
}

/// Trial fast-forward must be invisible in the tallies: the pinned
/// campaign digests reproduce exactly with snapshots off, at the Auto
/// policy, and at two explicit strides — and at any worker count (the
/// engine's shard fold is already order-independent, but run 1 and 4
/// workers to prove the resume path doesn't break it).
#[test]
fn campaign_tallies_identical_snapshots_on_or_off_any_workers() {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
    let policies = [
        SnapshotPolicy::Off,
        SnapshotPolicy::Auto,
        SnapshotPolicy::Every(1000),
        SnapshotPolicy::Every(7777),
    ];
    for policy in policies {
        for workers in [1usize, 4] {
            let (result, run) = Campaign::new(Avf::new(Injector::Sassifi), &w, &device)
                .budget(Budget::fixed(160).seed(12021).snapshots(policy))
                .workers(workers)
                .run_full()
                .unwrap();
            assert_eq!(run.trials, 160);
            assert_eq!(
                (result.counts.sdc, result.counts.due, result.counts.masked),
                (103, 39, 18),
                "tallies drifted with snapshots={policy:?} workers={workers}"
            );
        }
    }
}

/// Hidden-resource campaigns ride the same seed-deterministic sharded
/// RNG as the architectural injectors: pinned tallies must reproduce
/// bit-identically at any worker count, with trial fast-forward from
/// golden snapshots on or off. Hidden faults trigger at scheduler-round
/// boundaries — exactly the snapshot capture points — so a resume-parity
/// bug in any of the six hidden fault families shifts a tally here.
#[test]
fn hidden_campaign_tallies_pinned_any_workers_snapshots_on_or_off() {
    let device = DeviceModel::named("v100-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let policies = [SnapshotPolicy::Off, SnapshotPolicy::Auto, SnapshotPolicy::Every(1000)];
    for policy in policies {
        for workers in [1usize, 4] {
            let (result, run) = Campaign::new(HiddenAvf::full(), &w, &device)
                .budget(Budget::fixed(160).seed(12021).snapshots(policy))
                .workers(workers)
                .run_full()
                .unwrap();
            assert_eq!(run.trials, 160);
            assert_eq!(
                (result.counts.sdc, result.counts.due, result.counts.masked),
                (63, 71, 26),
                "hidden tallies drifted (v100/mxm_f32_tiny seed 12021, \
                 snapshots={policy:?} workers={workers})"
            );
        }
    }
}

/// The golden run's own digests (counts and SitesRecord) are unchanged by
/// snapshot capture: the capture hook only copies state, never perturbs
/// execution.
#[test]
fn golden_digests_identical_with_and_without_snapshots() {
    let device = DeviceModel::named("v100-sim");
    let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
    let plain = w.execute(&device, &RunOptions::golden().record_sites(true));
    for stride in [512u64, 4096] {
        let snap =
            w.execute(&device, &RunOptions::golden().record_sites(true).snapshot_every(stride));
        assert_eq!(plain.counts.total, snap.counts.total);
        assert_eq!(plain.counts.per_unit, snap.counts.per_unit);
        assert_eq!(plain.counts.sites, snap.counts.sites);
        assert_eq!(plain.memory.raw(), snap.memory.raw());
        let a = plain.sites_record.as_ref().unwrap();
        let b = snap.sites_record.as_ref().unwrap();
        assert_eq!(a.site_pcs, b.site_pcs);
        assert_eq!(a.block_windows, b.block_windows);
        assert!(!snap.snapshots.is_empty(), "stride {stride} captured nothing");
    }
}

#[test]
fn golden_counts_and_sites_record_pinned() {
    let cases = [
        (
            "mxm_f32_tiny/k40c",
            build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny),
            DeviceModel::named("k40c-sim"),
            (57344u64, 14446947560695722350u64, 48640u64, 17686690349316740165u64),
        ),
        (
            "hotspot_f16_tiny/v100",
            build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny),
            DeviceModel::named("v100-sim"),
            (5184u64, 2033849798692785799u64, 4544u64, 8827934939734633225u64),
        ),
    ];
    for (name, w, device, (total, counts_digest, sites_len, sites_digest)) in cases {
        let opts = RunOptions::golden().record_sites(true);
        let run = w.execute(&device, &opts);
        let c = &run.counts;
        let got_counts = digest_u64s(
            c.per_unit
                .iter()
                .chain(c.per_mix.iter())
                .chain(c.warp_latency.iter())
                .chain(c.warp_instrs.iter())
                .copied()
                .chain([
                    c.sites.gpr_writers,
                    c.sites.gpr_writers_no_half,
                    c.sites.loads,
                    c.sites.mem_ops,
                    c.sites.setp,
                ]),
        );
        let rec = run.sites_record.as_ref().unwrap();
        let got_sites = digest_u64s(
            rec.site_pcs
                .iter()
                .map(|&pc| pc as u64)
                .chain(rec.block_windows.iter().flat_map(|&(s, e)| [s, e])),
        );
        assert_eq!(
            (c.total, got_counts, rec.site_pcs.len() as u64, got_sites),
            (total, counts_digest, sites_len, sites_digest),
            "golden counts / SitesRecord drifted for {name}"
        );
    }
}
