//! Registry-built campaign pins for the device-spec layer.
//!
//! `gpu_arch::spec` replaced the hand-written device constructors with
//! validated spec files compiled to the same models. That refactor is
//! only sound if a campaign built entirely from the registry — device
//! resolved by token, workload built with the spec's codegen-quirk
//! profile — is *bit-identical* to the pre-spec pipeline: same RNG draw
//! order, same tallies, same golden digests. These tests pin the same
//! concrete values as `decode_parity.rs` (captured on the seed revision)
//! against the registry path, so a spec-file edit that silently shifts
//! behavior fails loudly.

#![allow(clippy::unwrap_used)]

use std::path::Path;

use campaign::{Budget, Campaign};
use gpu_arch::{DeviceRegistry, Precision};
use gpu_sim::{RunOptions, Target};
use injector::{Avf, Injector};
use workloads::{build_with, Benchmark, Scale};

#[test]
fn registry_built_campaign_reproduces_pinned_k40c_tallies() {
    let registry = DeviceRegistry::builtin();
    let spec = registry.resolve_spec("k40c").unwrap();
    let device = registry.resolve("k40c-sim").unwrap();
    // The spec's default era is CUDA 7; the quirk profile must generate
    // the identical kernel the old `CodeGen::Cuda7` match arms did.
    let w = build_with(Benchmark::Mxm, Precision::Single, &spec.codegen_profile(), Scale::Tiny);
    let (result, run) = Campaign::new(Avf::new(Injector::Sassifi), &w, &device)
        .budget(Budget::fixed(160).seed(12021))
        .run_full()
        .unwrap();
    assert_eq!(run.trials, 160);
    assert_eq!(
        (result.counts.sdc, result.counts.due, result.counts.masked),
        (103, 39, 18),
        "registry-built campaign drifted from the pinned pre-spec tallies \
         (Sassifi/k40c/mxm_f32_tiny seed 12021)"
    );
}

#[test]
fn registry_built_campaign_reproduces_pinned_v100_tallies() {
    let registry = DeviceRegistry::builtin();
    let spec = registry.resolve_spec("v100").unwrap();
    let device = registry.resolve("v100-sim").unwrap();
    let w = build_with(Benchmark::Hotspot, Precision::Half, &spec.codegen_profile(), Scale::Tiny);
    let (result, run) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(160).seed(12021))
        .run_full()
        .unwrap();
    assert_eq!(run.trials, 160);
    assert_eq!(
        (result.counts.sdc, result.counts.due, result.counts.masked),
        (52, 66, 42),
        "registry-built campaign drifted from the pinned pre-spec tallies \
         (NvBitFi/v100/hotspot_f16_tiny seed 12021)"
    );
}

/// A spec resolved *from its file on disk* (the `--device PATH` route)
/// drives the golden engine to the same pinned digests as the registry
/// id — file parsing, validation, and model compilation are all on the
/// campaign-critical path here.
#[test]
fn file_resolved_spec_reproduces_pinned_golden_counts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let registry = DeviceRegistry::builtin();
    let spec =
        registry.resolve_spec(root.join("specs/devices/k40c.spec").to_str().unwrap()).unwrap();
    let device = spec.sim_model();
    let w = build_with(Benchmark::Mxm, Precision::Single, &spec.codegen_profile(), Scale::Tiny);
    let run = w.execute(&device, &RunOptions::golden().record_sites(true));
    // Same pins as decode_parity::golden_counts_and_sites_record_pinned.
    assert_eq!(run.counts.total, 57344, "golden dynamic-instruction count drifted");
    assert_eq!(
        run.sites_record.as_ref().unwrap().site_pcs.len(),
        48640,
        "golden injectable-site population drifted"
    );
}

/// `-sim` tokens resolve to the single-SM campaign variant with the
/// full board's identity preserved in the name.
#[test]
fn sim_tokens_resolve_to_campaign_variants() {
    let registry = DeviceRegistry::builtin();
    for id in ["k40c", "v100", "titan-v", "a100"] {
        let full = registry.resolve(id).unwrap();
        let sim = registry.resolve(&format!("{id}-sim")).unwrap();
        assert_eq!(sim.sms, 1, "{id}-sim is not a 1-SM variant");
        assert!(full.sms > 1, "{id} full board lost its SM count");
        assert!(
            sim.name.starts_with(&full.name),
            "{id}-sim name {:?} does not carry the board name {:?}",
            sim.name,
            full.name
        );
    }
}
