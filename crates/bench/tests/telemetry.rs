//! Acceptance tests for the campaign telemetry pipeline (DESIGN.md §15):
//! a real injector campaign on HHOTSPOT/Volta must produce a valid Chrome
//! trace and a Prometheus snapshot with trial-duration histogram buckets,
//! the span tree must be well-formed, and telemetry must never perturb
//! the architectural result — tallies are bit-identical with telemetry
//! on or off, at any worker count.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use campaign::{Budget, Campaign, CampaignRun};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use injector::{Avf, AvfResult, HiddenAvf, Injector};
use obs::{json, CampaignObserver, MetricsRegistry, SpanBus};
use workloads::{build, Benchmark, Scale, Workload};

fn hhotspot() -> (Workload, DeviceModel) {
    let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
    assert_eq!(w.name, "HHOTSPOT");
    (w, DeviceModel::named("v100-sim"))
}

fn run_campaign(
    trials: u32,
    workers: usize,
    observer: CampaignObserver<'_>,
) -> (AvfResult, CampaignRun) {
    let (w, device) = hhotspot();
    Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(trials).seed(2021))
        .workers(workers)
        .observer(observer)
        .run_full()
        .expect("telemetry campaign failed")
}

#[test]
fn campaign_emits_valid_chrome_trace_and_prometheus_snapshot() {
    let metrics = MetricsRegistry::new();
    let spans = SpanBus::new();
    let observer = CampaignObserver::with_metrics(&metrics).with_spans(&spans);
    let (_, run) = run_campaign(96, 2, observer);
    assert_eq!(run.trials, 96);

    // The Chrome trace is one valid JSON array of complete/instant
    // events; every event carries the fields chrome://tracing requires.
    let trace = spans.to_chrome_trace();
    let doc = json::parse(&trace).expect("chrome trace must be valid JSON");
    let events = doc.as_arr().expect("chrome trace must be a JSON array");
    assert!(!events.is_empty());
    for event in events {
        let obj = event.as_obj().expect("trace event must be an object");
        let ph = obj.get("ph").and_then(json::Json::as_str).expect("missing ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(obj.get("name").and_then(json::Json::as_str).is_some());
        assert!(obj.get("ts").is_some() && obj.get("pid").is_some() && obj.get("tid").is_some());
        if ph == "X" {
            assert!(obj.get("dur").is_some(), "complete event without dur");
        }
    }

    // The Prometheus exposition carries the trial-duration histogram with
    // cumulative buckets, plus the outcome counters.
    let prom = metrics.snapshot().to_prometheus_text();
    assert!(prom.contains("# TYPE campaign_trial_micros histogram"));
    assert!(prom.contains("campaign_trial_micros_bucket{le=\""));
    assert!(prom.contains("campaign_trial_micros_bucket{le=\"+Inf\"} 96"));
    assert!(prom.contains("campaign_trial_micros_count 96"));
    assert!(prom.contains("trials_total 96"));
}

#[test]
fn span_tree_is_well_formed() {
    let metrics = MetricsRegistry::new();
    let spans = SpanBus::new();
    let observer = CampaignObserver::with_metrics(&metrics).with_spans(&spans);
    let (_, run) = run_campaign(96, 3, observer);

    let records = spans.records();
    let campaigns: Vec<_> = records.iter().filter(|r| r.cat == "campaign").collect();
    assert_eq!(campaigns.len(), 1, "exactly one campaign span");
    let campaign = campaigns[0];
    assert!(campaign.dur_us.is_some(), "campaign span must be closed");
    assert_eq!(campaign.parent, obs::ROOT_SPAN);

    let shard_ids: std::collections::BTreeSet<u64> =
        records.iter().filter(|r| r.cat == "shard").map(|r| r.id).collect();
    assert_eq!(shard_ids.len() as u32, run.shards, "one span per shard");
    for shard in records.iter().filter(|r| r.cat == "shard") {
        assert_eq!(shard.parent, campaign.id, "shards parent under the campaign");
        assert!(shard.dur_us.is_some(), "shard span must be closed");
    }

    let trials: Vec<_> = records.iter().filter(|r| r.cat == "trial").collect();
    assert_eq!(trials.len() as u64, run.trials, "one span per trial");
    for trial in &trials {
        assert!(trial.dur_us.is_some(), "every trial span must be closed");
        assert!(shard_ids.contains(&trial.parent), "trials parent under a shard");
    }

    // Engine-phase spans from sampled trials nest under trial spans.
    let trial_ids: std::collections::BTreeSet<u64> = trials.iter().map(|r| r.id).collect();
    let phases: Vec<_> = records.iter().filter(|r| r.cat == "engine").collect();
    assert!(!phases.is_empty(), "default sampling must trace at least one trial");
    for phase in &phases {
        assert!(trial_ids.contains(&phase.parent), "phases parent under a trial");
        assert!(phase.dur_us.is_some());
    }
}

/// Hidden-resource campaigns stratify their outcome counters per hidden
/// class (`campaign.hidden.{class}.{sdc,due,masked}`), the source of the
/// campaign-top hidden-coverage line, and the strata sum back to the
/// campaign tallies.
#[test]
fn hidden_campaign_emits_per_class_counters() {
    let (w, device) = hhotspot();
    let metrics = MetricsRegistry::new();
    let observer = CampaignObserver::with_metrics(&metrics);
    let (result, run) = Campaign::new(HiddenAvf::full(), &w, &device)
        .budget(Budget::fixed(120).seed(2021))
        .observer(observer)
        .run_full()
        .expect("hidden campaign failed");
    assert_eq!(run.trials, 120);

    let snap = metrics.snapshot();
    let sum = |suffix: &str| -> u64 {
        ["scheduler", "fetch", "mask", "barrier", "memq"]
            .iter()
            .filter_map(|c| snap.counters.get(&format!("campaign.hidden.{c}.{suffix}")))
            .sum()
    };
    assert_eq!(sum("sdc"), result.counts.sdc, "{:?}", snap.counters);
    assert_eq!(sum("due"), result.counts.due, "{:?}", snap.counters);
    assert_eq!(sum("masked"), result.counts.masked, "{:?}", snap.counters);
    // Every class the sampler cycles over appears in at least one stratum.
    for class in ["scheduler", "fetch", "mask", "barrier", "memq"] {
        let total: u64 = ["sdc", "due", "masked"]
            .iter()
            .filter_map(|s| snap.counters.get(&format!("campaign.hidden.{class}.{s}")))
            .sum();
        assert!(total > 0, "class {class} never tallied: {:?}", snap.counters);
    }
}

#[test]
fn tallies_are_bit_identical_with_telemetry_on_or_off() {
    let (bare_result, bare) = run_campaign(64, 1, CampaignObserver::none());

    let metrics = MetricsRegistry::new();
    let spans = SpanBus::new();
    let observer = CampaignObserver::with_metrics(&metrics).with_spans(&spans);
    let (observed_result, observed) = run_campaign(64, 1, observer);

    assert_eq!(bare_result.counts, observed_result.counts);
    assert_eq!(bare.counts, observed.counts);
    assert_eq!(bare.executed, observed.executed);
    assert_eq!(bare.direct, observed.direct);
    assert_eq!(bare.trials, observed.trials);
    assert_eq!(bare.stop, observed.stop);

    // ... and at any worker count, with telemetry still attached.
    let metrics = MetricsRegistry::new();
    let spans = SpanBus::new();
    let observer = CampaignObserver::with_metrics(&metrics).with_spans(&spans);
    let (wide_result, wide) = run_campaign(64, 4, observer);
    assert_eq!(bare_result.counts, wide_result.counts);
    assert_eq!(bare.counts, wide.counts);
    assert_eq!(bare.direct, wide.direct);
    assert_eq!(bare.trials, wide.trials);
}
