//! Acceptance test for the Section VII-B closure: the beam-vs-predicted
//! DUE gap must shrink monotonically as hidden-injection coverage grows,
//! from the paper's orders-of-magnitude register-only underestimation to
//! within 2x at full coverage.
//!
//! When `HIDDEN_GAP_JSON_PATH` is set (as in CI), the per-rung rows are
//! also written there as JSON lines for the gap-closure artifact.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench::{hidden_gap_closure, Budget, GapClosure, HarnessConfig};
use workloads::Scale;

fn micro() -> HarnessConfig {
    HarnessConfig {
        scale: Scale::Tiny,
        profile_scale: Scale::Tiny,
        injection: Budget::fixed(60).seed(1234),
        beam: Budget::fixed(2000).seed(1234),
        bench_beam: Budget::fixed(400).seed(1234),
        bench_injection: Budget::fixed(40).seed(1234),
    }
}

fn write_artifact(set: &GapClosure) {
    if let Ok(path) = std::env::var("HIDDEN_GAP_JSON_PATH") {
        std::fs::write(&path, set.to_json_lines())
            .unwrap_or_else(|e| panic!("cannot write gap artifact to {path}: {e}"));
    }
}

#[test]
fn due_gap_closes_monotonically_with_hidden_coverage() {
    let set = hidden_gap_closure(&micro());
    write_artifact(&set);

    let codes = set.codes();
    assert!(codes.len() >= 2, "need at least two workloads, got {codes:?}");
    assert!(set.levels >= 3, "need at least three coverage levels, got {}", set.levels);

    for code in codes {
        let ladder = set.ladder(code);
        assert_eq!(ladder.len(), set.levels, "{code}: missing rungs");

        // The ground truth is fixed per code; only the prediction moves.
        for r in &ladder {
            assert_eq!(r.measured_due, ladder[0].measured_due, "{code}: beam truth drifted");
            assert!(r.gap.is_finite() && r.gap > 0.0, "{code}/{}: gap {}", r.coverage, r.gap);
        }

        // Coverage grows rung by rung and the gap never widens.
        for pair in ladder.windows(2) {
            assert!(
                pair[1].rate_coverage >= pair[0].rate_coverage,
                "{code}: rate coverage regressed {} -> {}",
                pair[0].coverage,
                pair[1].coverage
            );
            assert!(
                pair[1].gap <= pair[0].gap,
                "{code}: gap widened {} ({:.1}x) -> {} ({:.1}x)",
                pair[0].coverage,
                pair[0].gap,
                pair[1].coverage,
                pair[1].gap
            );
        }

        // Register-only reproduces the paper's blind spot; full coverage
        // closes it. (Probed margins: none >= 68x, full <= 1.8x.)
        let none = ladder.first().unwrap();
        let full = ladder.last().unwrap();
        assert_eq!(none.coverage, "none");
        assert_eq!(none.predicted_hidden_due, 0.0);
        assert!(none.gap >= 10.0, "{code}: register-only gap only {:.1}x", none.gap);
        assert_eq!(full.coverage, "full");
        assert!((full.rate_coverage - 1.0).abs() < 1e-9, "{code}: {}", full.rate_coverage);
        assert!(full.gap <= 2.0, "{code}: full-coverage gap still {:.2}x", full.gap);
        assert!(full.gap < none.gap, "{code}: ladder closed nothing");
        assert!(
            full.predicted_hidden_due > 0.0 && full.predicted_hidden_due <= full.predicted_due,
            "{code}: hidden share {} of {}",
            full.predicted_hidden_due,
            full.predicted_due
        );
    }

    // The artifact rows are well-formed JSON lines.
    let json = set.to_json_lines();
    for line in json.lines() {
        let doc = obs::json::parse(line).expect("gap row must be valid JSON");
        let obj = doc.as_obj().expect("gap row must be an object");
        assert_eq!(obj.get("report").and_then(obs::json::Json::as_str), Some("hidden_gap"));
        assert!(obj.get("gap").is_some() && obj.get("coverage").is_some());
    }
    assert_eq!(json.lines().count(), set.rows.len());
}
