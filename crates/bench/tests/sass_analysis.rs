//! Acceptance tests for the `sass-analysis` integration: every built-in
//! workload kernel is lint-clean, seeded bugs of every lint kind are
//! caught, and statically-pruned AVF campaigns reproduce unpruned tallies
//! while simulating measurably fewer trials.

use campaign::{Budget, Campaign};
use gpu_arch::{CmpOp, CodeGen, DeviceModel, KernelBuilder, MemWidth, Operand, Precision, Reg};
use injector::{Avf, Injector};
use sass_analysis::{verify, verify_with_launch, LintKind, Severity};
use workloads::{build, kepler_suite, volta_suite, Benchmark, Scale};

/// The verifier holds on every kernel the paper harness can build: no
/// diagnostic reaches `Severity::Error`. (Warnings are allowed — the
/// hand-built kernels contain compiler-artifact-style dead writes.)
#[test]
fn all_workload_kernels_are_lint_clean() {
    let mut all = kepler_suite(CodeGen::Cuda7, Scale::Tiny);
    all.extend(kepler_suite(CodeGen::Cuda10, Scale::Tiny));
    all.extend(volta_suite(Scale::Tiny));
    for w in &all {
        let errors: Vec<_> = verify_with_launch(&w.kernel, &w.launch)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name);
    }
}

/// One deliberately-broken fixture per lint kind; each must be caught.
#[test]
fn seeded_bug_fixtures_are_detected() {
    let fires = |k: &gpu_arch::Kernel, kind: LintKind| {
        assert!(
            verify(k).iter().any(|d| d.kind == kind),
            "{kind:?} not detected in `{}`: {:?}",
            k.name,
            verify(k)
        );
    };

    let mut b = KernelBuilder::new("uninit");
    b.iadd(Reg(1), Operand::Reg(Reg(0)), Operand::Imm(1)); // R0 never written
    b.ldp(Reg(2), 0);
    b.stg(MemWidth::W32, Reg(2), 0, Reg(1));
    b.exit();
    fires(&b.build().unwrap(), LintKind::UninitializedRead);

    let mut b = KernelBuilder::new("dead");
    b.ldp(Reg(2), 0);
    b.mov(Reg(0), Operand::Imm(1));
    b.mov(Reg(5), Operand::Imm(9)); // never observed
    b.stg(MemWidth::W32, Reg(2), 0, Reg(0));
    b.exit();
    fires(&b.build().unwrap(), LintKind::DeadWrite);

    let mut b = KernelBuilder::new("unreach");
    b.bra("end");
    b.mov(Reg(0), Operand::Imm(1)); // skipped by the unconditional branch
    b.label("end");
    b.exit();
    fires(&b.build().unwrap(), LintKind::UnreachableBlock);

    let mut b = KernelBuilder::new("divbar");
    b.shared(64);
    b.s2r_tid_x(Reg(0));
    b.isetp(gpu_arch::Pred(0), CmpOp::Lt, Operand::Reg(Reg(0)), Operand::Imm(1));
    b.if_not_p(gpu_arch::Pred(0));
    b.bra("join");
    b.bar(); // only lanes with tid.x == 0 arrive: deadlock in the engine
    b.label("join");
    b.exit();
    fires(&b.build().unwrap(), LintKind::DivergentBarrier);

    let mut b = KernelBuilder::new("race");
    b.shared(256);
    b.s2r_tid_x(Reg(0));
    b.shl(Reg(1), Operand::Reg(Reg(0)), Operand::Imm(2));
    b.sts(MemWidth::W32, Reg(1), 0, Reg(0));
    b.lds(MemWidth::W32, Reg(3), Reg(0), 0); // different base, no BAR.SYNC
    b.ldp(Reg(2), 0);
    b.stg(MemWidth::W32, Reg(2), 0, Reg(3));
    b.exit();
    fires(&b.build().unwrap(), LintKind::SharedRace);

    let mut b = KernelBuilder::new("ldp-oob");
    b.ldp(Reg(2), 7); // launch below provides a single parameter word
    b.stg(MemWidth::W32, Reg(2), 0, Reg(2));
    b.exit();
    let k = b.build().unwrap();
    let launch = gpu_arch::LaunchConfig::new(1, 32, vec![0x100]);
    assert!(
        verify_with_launch(&k, &launch).iter().any(|d| d.kind == LintKind::LdpOutOfRange),
        "LdpOutOfRange not detected"
    );
}

/// The headline pruning win (ISSUE acceptance): on both half-precision
/// Volta workloads a pruned NVBitFI-model AVF campaign resolves >= 15% of
/// its trials by static proof — masked liveness/flow proofs plus outright
/// DUE proofs — and on at least one of them >= 30%, while every
/// SDC/DUE/Masked tally stays bit-identical to the unpruned campaign at
/// the same seed. The verdict strata reported by the sampler must also be
/// dynamically sound: no simulated SDC inside a masked/addr_ctl stratum,
/// no simulated DUE inside the store stratum.
#[test]
fn pruned_avf_campaigns_statically_resolve_thirty_percent() {
    let device = DeviceModel::named("v100-sim");
    let budget = || Budget::fixed(300).seed(7);
    let mut best = 0.0f64;
    for (bench, precision) in
        [(Benchmark::Hotspot, Precision::Half), (Benchmark::Lava, Precision::Half)]
    {
        let w = build(bench, precision, CodeGen::Cuda10, Scale::Tiny);
        let (base, base_run) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
            .budget(budget())
            .run_full()
            .unwrap();
        let (pruned, pruned_run) = Campaign::new(Avf::new_pruned(Injector::NvBitFi), &w, &device)
            .budget(budget())
            .run_full()
            .unwrap();
        assert_eq!(base.counts, pruned.counts, "{}: tallies diverged", w.name);
        assert_eq!(base.sdc, pruned.sdc, "{}: SDC estimate diverged", w.name);
        assert_eq!(base.due, pruned.due, "{}: DUE estimate diverged", w.name);
        let total = base_run.executed.total();
        let skipped = total - pruned_run.executed.total();
        let fraction = skipped as f64 / total as f64;
        assert!(fraction >= 0.15, "{}: resolved only {skipped}/{total} trials", w.name);
        best = best.max(fraction);
        // Every skipped trial is tallied under a static-proof label, and
        // the per-stratum dynamic outcomes respect the lattice bounds.
        let masked = pruned_run.direct.get("static-masked").map_or(0, |c| c.total());
        let due = pruned_run.direct.get("static-due").map_or(0, |c| c.total());
        assert_eq!(masked + due, skipped, "{}: skipped trials not labeled", w.name);
        for (s, c) in &pruned_run.strata_sim {
            match s.as_str() {
                "masked" | "addr_ctl" => {
                    assert_eq!(c.sdc, 0, "{}: SDC in simulated {s} stratum", w.name)
                }
                "store" => assert_eq!(c.due, 0, "{}: DUE in simulated store stratum", w.name),
                _ => {}
            }
        }
    }
    assert!(best >= 0.30, "best statically-resolved fraction {best:.3} < 0.30");
}
