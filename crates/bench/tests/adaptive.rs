//! Acceptance test for the CI-targeted stop rule (DESIGN.md, "adaptive
//! campaign engine"): on a skewed workload the adaptive quick-profile
//! budget reaches the same Wilson 95% CI half-width target as the fixed
//! quick-profile budget while spending fewer trials.

use campaign::{Budget, Campaign, StopReason};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use injector::{Avf, Injector};
use stats::wilson_half_width;
use workloads::{build, Benchmark, Scale};

/// The widest of the two tracked CIs — the quantity the stop rule drives
/// below its target.
fn achieved_half_width(counts: &stats::OutcomeCounts, trials: u64) -> f64 {
    wilson_half_width(counts.sdc, trials).max(wilson_half_width(counts.due, trials))
}

#[test]
#[ignore = "probe: prints per-workload AVF skew, run with --nocapture"]
fn probe_workload_skew() {
    let device = DeviceModel::named("k40c-sim");
    for bench in [
        Benchmark::Mxm,
        Benchmark::Hotspot,
        Benchmark::Lava,
        Benchmark::Nw,
        Benchmark::Mergesort,
        Benchmark::Quicksort,
        Benchmark::Gaussian,
        Benchmark::Lud,
    ] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w = build(bench, precision, CodeGen::Cuda10, Scale::Tiny);
        let (r, run) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
            .budget(Budget::fixed(400).seed(2021))
            .run_full()
            .unwrap();
        println!(
            "{:<12} sdc={:.3} due={:.3} hw={:.4}",
            w.name,
            r.sdc_avf(),
            r.due_avf(),
            achieved_half_width(&run.counts, run.trials)
        );
    }
}

#[test]
fn adaptive_budget_matches_fixed_ci_with_fewer_trials() {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Nw, Precision::Int32, CodeGen::Cuda10, Scale::Tiny);

    // Fixed quick-profile budget: always spends the full 400 trials,
    // bounding the half-width by ~0.049 even at the worst case p = 0.5.
    let (_, fixed) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(400).seed(2021))
        .run_full()
        .unwrap();
    assert_eq!(fixed.trials, 400);
    assert_eq!(fixed.stop, StopReason::Ceiling);

    // Adaptive budget with the same ceiling and the quick CI target.
    let (_, adaptive) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::adaptive(100, 400, 0.05).seed(2021))
        .run_full()
        .unwrap();

    let fixed_hw = achieved_half_width(&fixed.counts, fixed.trials);
    let adaptive_hw = achieved_half_width(&adaptive.counts, adaptive.trials);

    // Both reach the quick-profile CI target...
    assert!(fixed_hw <= 0.05, "fixed budget missed the target: {fixed_hw}");
    assert!(adaptive_hw <= 0.05, "adaptive stop fired above the target: {adaptive_hw}");
    // ...but the adaptive campaign spent fewer trials to get there.
    assert!(
        adaptive.trials < fixed.trials,
        "adaptive spent {} trials, fixed spent {}",
        adaptive.trials,
        fixed.trials
    );
    assert!(adaptive.stop.stopped_early(), "expected a CiTarget stop, got {:?}", adaptive.stop);
}

#[test]
#[ignore = "paper-scale variant of the efficiency claim (minutes)"]
fn adaptive_budget_is_cheaper_at_full_scale() {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Nw, Precision::Int32, CodeGen::Cuda10, Scale::Small);

    let (_, fixed) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::full().exhaustive())
        .run_full()
        .unwrap();
    let (_, adaptive) = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::full())
        .run_full()
        .unwrap();

    let target = Budget::full().ci_half_width.unwrap();
    assert!(achieved_half_width(&fixed.counts, fixed.trials) <= target);
    assert!(achieved_half_width(&adaptive.counts, adaptive.trials) <= target);
    assert!(adaptive.trials < fixed.trials);
}
