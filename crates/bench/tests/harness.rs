//! Smoke tests for the experiment harness: every table/figure function
//! runs end to end at micro campaign sizes and produces well-formed data
//! and renderable text.

use bench::{
    codegen_comparison, convergence, due_analysis, fig1, fig3, fig4, fig5, fig6, table1, Budget,
    HarnessConfig,
};
use workloads::{Benchmark, Scale};

fn micro() -> HarnessConfig {
    HarnessConfig {
        scale: Scale::Tiny,
        profile_scale: Scale::Tiny,
        injection: Budget::fixed(40).seed(1234),
        beam: Budget::fixed(300).seed(1234),
        bench_beam: Budget::fixed(250).seed(1234),
        bench_injection: Budget::fixed(25).seed(1234),
    }
}

#[test]
fn table1_covers_both_devices() {
    let rows = table1(&micro());
    assert!(rows.iter().any(|r| r.device == "Kepler"));
    assert!(rows.iter().any(|r| r.device == "Volta"));
    assert_eq!(rows.iter().filter(|r| r.device == "Kepler").count(), 13);
    assert_eq!(rows.iter().filter(|r| r.device == "Volta").count(), 16);
    for r in &rows {
        assert!(r.ipc >= 0.0 && r.occupancy >= 0.0 && r.occupancy <= 1.0, "{r:?}");
    }
    let text = bench::render::table1(&rows);
    assert!(text.contains("FGEMM"));
}

#[test]
fn fig1_fractions_sum_to_one() {
    let rows = fig1(&micro());
    for r in &rows {
        let s: f64 = r.fractions.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "{}: {s}", r.name);
    }
}

#[test]
fn fig3_has_reference_normalization() {
    let rows = fig3(&micro());
    // The normalization reference (FADD DUE on Kepler) must be 1.0.
    let fadd = rows.iter().find(|r| r.device == "Kepler" && r.name == "FADD").unwrap();
    assert!((fadd.due_norm - 1.0).abs() < 1e-9);
    // RF appears per megabyte.
    assert!(rows.iter().any(|r| r.name == "RF/MB"));
    // Volta carries the tensor benches.
    assert!(rows.iter().any(|r| r.device == "Volta" && r.name == "HMMA"));
}

#[test]
fn fig4_respects_injector_capabilities() {
    let rows = fig4(&micro());
    // No SASSIFI rows for proprietary codes.
    assert!(!rows
        .iter()
        .any(|r| r.injector == injector::Injector::Sassifi && r.name.contains("GEMM")));
    assert!(!rows
        .iter()
        .any(|r| r.injector == injector::Injector::Sassifi && r.name.contains("YOLO")));
    // No SASSIFI rows on Volta at all.
    assert!(!rows.iter().any(|r| r.device == "Volta" && r.injector == injector::Injector::Sassifi));
    for r in &rows {
        let s = r.sdc + r.due + r.masked;
        assert!((s - 1.0).abs() < 1e-9, "{}: {s}", r.name);
    }
}

#[test]
fn fig5_rows_follow_the_paper_layout() {
    let rows = fig5(&micro());
    // Kepler: 9 ECC-off rows + 13 ECC-on rows; Volta: 12 off + 4 on.
    assert_eq!(rows.iter().filter(|r| r.device == "Kepler" && !r.ecc).count(), 9);
    assert_eq!(rows.iter().filter(|r| r.device == "Kepler" && r.ecc).count(), 13);
    assert_eq!(rows.iter().filter(|r| r.device == "Volta" && !r.ecc).count(), 12);
    assert_eq!(rows.iter().filter(|r| r.device == "Volta" && r.ecc).count(), 4);
}

#[test]
fn fig6_and_due_analysis_are_complete() {
    let set = fig6(&micro());
    assert!(set.rows.len() > 40, "only {} comparisons", set.rows.len());
    // Every Kepler non-proprietary code appears with both AVF sources.
    let sassifi_rows =
        set.rows.iter().filter(|r| r.injector == injector::Injector::Sassifi).count();
    assert!(sassifi_rows > 10);
    let due = due_analysis(&set);
    assert_eq!(due.len(), 4);
    let text = bench::render::fig6(&set);
    assert!(text.contains("geometric mean") || text.contains("Averages"));
}

#[test]
fn codegen_study_produces_ratios() {
    let rows = codegen_comparison(&micro());
    assert_eq!(rows.len(), 8);
    for r in &rows {
        assert!(r.avf_cuda7 >= 0.0 && r.avf_cuda10 >= 0.0);
        assert!(r.dyn_cuda7 >= r.dyn_cuda10, "{}: optimizer grew the code", r.name);
    }
}

#[test]
fn convergence_ci_shrinks() {
    let rows = convergence(&micro(), Benchmark::Hotspot);
    assert_eq!(rows.len(), 6);
    assert!(
        rows.last().unwrap().ci_width < rows.first().unwrap().ci_width,
        "CI did not shrink: {rows:?}"
    );
}
