//! Textual rendering of the experiment results: the same rows/series the
//! paper's tables and figures report.

use crate::experiments::{
    AvfRow, BeamRow, ComparisonSet, DeviceReport, DueSummary, Fig3Row, MixRow, ProfileRow,
};
use gpu_arch::{DeviceSummary, MixCategory};
use injector::Injector;
use std::fmt::Write;

/// Render Table I.
pub fn table1(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I: Codes characteristics on Kepler and Volta GPUs");
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:>10} {:>6} {:>8} {:>10}",
        "Device", "Code", "SHARED", "RF", "IPC", "Occupancy"
    );
    for r in rows {
        let shared = if r.shared >= 1024 {
            format!("{:.1}KB", r.shared as f64 / 1024.0)
        } else {
            format!("{}B", r.shared)
        };
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>10} {:>6} {:>8.2} {:>10.2}",
            r.device, r.name, shared, r.regs, r.ipc, r.occupancy
        );
    }
    out
}

/// Render Figure 1 (instruction mix percentages).
pub fn fig1(rows: &[MixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1: Instruction type per code (percent)");
    let _ = writeln!(out, "{:-<100}", "");
    let _ = write!(out, "{:<8} {:<12}", "Device", "Code");
    for c in MixCategory::ALL {
        let _ = write!(out, " {:>7}", c.to_string());
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<8} {:<12}", r.device, r.name);
        for f in r.fractions {
            let _ = write!(out, " {:>6.1}%", f * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render Figure 3 (micro-benchmark FITs, normalized).
pub fn fig3(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Micro-benchmark FIT rates [a.u.], normalized to FADD DUE (Kepler) / HFMA DUE (Volta)"
    );
    let _ = writeln!(out, "{:-<64}", "");
    let _ =
        writeln!(out, "{:<8} {:<8} {:>12} {:>12}", "Device", "Bench", "SDC [a.u.]", "DUE [a.u.]");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:>12.2} {:>12.2}",
            r.device, r.name, r.sdc_norm, r.due_norm
        );
    }
    out
}

/// Render Figure 4 (AVFs).
pub fn fig4(rows: &[AvfRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4: AVF per code (SDC / DUE / Masked)");
    let _ = writeln!(out, "{:-<68}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:<8} {:>8} {:>8} {:>8}",
        "Device", "Code", "Tool", "SDC", "DUE", "Masked"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:<8} {:>8.3} {:>8.3} {:>8.3}",
            r.device,
            r.name,
            r.injector.to_string(),
            r.sdc,
            r.due,
            r.masked
        );
    }
    out
}

/// Render Figure 5 (beam FITs per code). Values are normalized within
/// each device to the smallest nonzero SDC FIT of that device's rows, so
/// the table reads in arbitrary units like the figure.
pub fn fig5(rows: &[BeamRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5: Beam-measured FIT rates [a.u.]");
    let _ = writeln!(out, "{:-<78}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:<8} {:>12} {:>12} {:>8} {:>8}",
        "Device", "Code", "ECC", "SDC [a.u.]", "DUE [a.u.]", "#SDC", "#DUE"
    );
    for device in ["Kepler", "Volta"] {
        let device_rows: Vec<&BeamRow> = rows.iter().filter(|r| r.device == device).collect();
        let reference = device_rows
            .iter()
            .map(|r| r.sdc_fit)
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min);
        let reference = if reference.is_finite() { reference } else { 1.0 };
        for r in device_rows {
            let _ = writeln!(
                out,
                "{:<8} {:<12} {:<8} {:>12.2} {:>12.2} {:>8} {:>8}",
                r.device,
                r.name,
                if r.ecc { "ON" } else { "OFF" },
                r.sdc_fit / reference,
                r.due_fit / reference,
                r.sdc_errors,
                r.due_errors
            );
        }
    }
    out
}

/// Render Figure 6 (fault simulation vs beam, signed ratios).
pub fn fig6(set: &ComparisonSet) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: SDC FIT, beam-measured vs fault-injection prediction (signed ratio)"
    );
    let _ = writeln!(out, "  (positive: beam higher; negative: prediction higher; |1| = perfect)");
    let _ = writeln!(out, "{:-<80}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:<4} {:<8} {:>11} {:>11} {:>8}",
        "Device", "Code", "ECC", "AVF src", "beam FIT", "predicted", "ratio"
    );
    for r in &set.rows {
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:<4} {:<8} {:>11.3e} {:>11.3e} {:>+8.1}",
            r.device,
            r.name,
            if r.ecc { "ON" } else { "OFF" },
            r.injector.to_string(),
            r.row.measured_sdc,
            r.row.predicted_sdc,
            r.row.sdc_ratio
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Averages (geometric mean of |ratio|):");
    for (device, ecc) in [("Kepler", false), ("Kepler", true), ("Volta", false), ("Volta", true)] {
        for injector in [Injector::Sassifi, Injector::NvBitFi] {
            if device == "Volta" && injector == Injector::Sassifi {
                continue;
            }
            let m = set.average_magnitude(device, ecc, injector);
            if m.is_finite() {
                let _ = writeln!(
                    out,
                    "  {device} ECC {:<3} {injector}: {m:.1}x",
                    if ecc { "ON" } else { "OFF" },
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "Predictions within 5x of beam: {:.0}%  |  within 10x: {:.0}%",
        set.within_factor(5.0) * 100.0,
        set.within_factor(10.0) * 100.0
    );
    out
}

/// Render the Section VII-B DUE summary.
pub fn due(summaries: &[DueSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Section VII-B: DUE FIT underestimation (beam / predicted)");
    let _ = writeln!(out, "{:-<56}", "");
    for s in summaries {
        if s.factor.is_finite() {
            let _ = writeln!(out, "  {:<18} {:>10.0}x", s.group, s.factor);
        } else {
            let _ = writeln!(out, "  {:<18} {:>10}", s.group, "inf");
        }
    }
    let _ = writeln!(
        out,
        "\n(The paper reports 120x/629x on K40c and 60x/46,700x on V100 —\n faults in hidden resources dominate DUEs and are invisible to\n architecture-level injection.)"
    );
    out
}

/// Render the hidden-resource DUE gap-closure ladder.
pub fn gap(set: &crate::experiments::GapClosure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section VII-B closure: DUE gap vs hidden-injection coverage (beam / predicted)"
    );
    let _ = writeln!(out, "{:-<86}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<10} {:<22} {:>8} {:>11} {:>11} {:>8}",
        "Device", "Code", "Coverage", "rate", "beam DUE", "predicted", "gap"
    );
    for name in set.codes() {
        for r in set.ladder(name) {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:<22} {:>7.0}% {:>11.3e} {:>11.3e} {:>7.1}x",
                r.device,
                r.name,
                r.coverage,
                r.rate_coverage * 100.0,
                r.measured_due,
                r.predicted_due,
                r.gap
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(\"none\" is today's architecture-level injectors — the paper's\n\
         orders-of-magnitude DUE underestimation; each rung adds hidden\n\
         scheduler/fetch/memory-path coverage and closes a share of the gap.)"
    );
    out
}

/// Render the device registry listing (`repro --list-devices`).
pub fn device_list(rows: &[DeviceSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Device registry ({} specs)", rows.len());
    let _ = writeln!(out, "{:-<76}", "");
    let _ = writeln!(
        out,
        "{:<10} {:<20} {:<8} {:>4} {:<12} {:<14}",
        "id", "name", "arch", "SMs", "ECC", "process"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<20} {:<8} {:>4} {:<12} {:<14}{}",
            r.id,
            r.name,
            r.arch.name(),
            r.sms,
            if r.ecc_toggle { "toggleable" } else { "none" },
            r.process_node,
            if r.warnings > 0 { format!("  ({} warnings)", r.warnings) } else { String::new() }
        );
    }
    out
}

/// Render a spec-driven device pipeline run (`repro device`).
pub fn device_report(r: &DeviceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Device pipeline: {} [{}] ({}, {} SMs; campaigns on the 1-SM variant)",
        r.device, r.id, r.arch, r.sms
    );
    let _ = writeln!(out, "  beam-measured vs predicted FIT; hidden DUE term at full coverage");
    let _ = writeln!(out, "{:-<92}", "");
    let _ = writeln!(
        out,
        "{:<12} {:<4} {:<8} {:>11} {:>11} {:>7} {:>11} {:>11} {:>7}",
        "Code", "ECC", "AVF src", "beam SDC", "pred SDC", "ratio", "beam DUE", "pred DUE", "gap"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<12} {:<4} {:<8} {:>11.3e} {:>11.3e} {:>+7.1} {:>11.3e} {:>11.3e} {:>6.1}x",
            row.name,
            if row.ecc { "ON" } else { "OFF" },
            row.injector.to_string(),
            row.row.measured_sdc,
            row.row.predicted_sdc,
            row.row.sdc_ratio,
            row.row.measured_due,
            row.row.predicted_due,
            row.row.due_underestimation
        );
    }
    out
}

/// Render the codegen comparison.
pub fn codegen(rows: &[crate::experiments::CodegenRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Compiler-generation study (NVBitFI on both binaries, Kepler)");
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "code", "AVF cu7", "AVF cu10", "ratio", "dyn cu7", "dyn cu10"
    );
    let mut ratios = Vec::new();
    for r in rows {
        let ratio = r.avf_cuda10 / r.avf_cuda7.max(1e-9);
        ratios.push(ratio);
        let _ = writeln!(
            out,
            "{:<12} {:>10.3} {:>10.3} {:>7.2}x {:>12} {:>12}",
            r.name, r.avf_cuda7, r.avf_cuda10, ratio, r.dyn_cuda7, r.dyn_cuda10
        );
    }
    let _ = writeln!(
        out,
        "\naverage CUDA10/CUDA7 SDC-AVF ratio: {:.2}x (the paper attributes the\n\
         ~18% SASSIFI-vs-NVBitFI gap primarily to this codegen difference)",
        stats::mean(&ratios)
    );
    out
}

/// Render the convergence study.
pub fn convergence(rows: &[crate::experiments::ConvergenceRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "AVF campaign convergence (Wilson 95% CI width vs injections)");
    let _ = writeln!(out, "{:-<52}", "");
    let _ = writeln!(out, "{:>10} {:>10} {:>12}", "inject", "SDC AVF", "CI width");
    for r in rows {
        let mark = if r.ci_width < 0.05 { "  <- under 5%" } else { "" };
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>11.3}%{}",
            r.injections,
            r.sdc_avf,
            r.ci_width * 100.0,
            mark
        );
    }
    let _ = writeln!(
        out,
        "\n(The paper sizes campaigns at >=4,000 injections per code to keep\n\
         the 95% CI under 5% — Section III-D.)"
    );
    out
}

/// Render the per-class AVF breakdown.
pub fn breakdown(rows: &[crate::experiments::BreakdownRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Per-instruction-class AVF (which corrupted resource matters)");
    let _ = writeln!(out, "{:-<52}", "");
    let _ = writeln!(out, "{:<12} {:<6} {:>10} {:>10}", "code", "class", "SDC AVF", "DUE AVF");
    for r in rows {
        let _ = writeln!(out, "{:<12} {:<6} {:>10.3} {:>10.3}", r.name, r.class, r.sdc, r.due);
    }
    out
}
