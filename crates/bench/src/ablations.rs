//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **φ factor** (Equation 4): prediction accuracy with and without the
//!    `occupancy x IPC` parallelism term — the paper's central modeling
//!    addition over prior work;
//! 2. **injector capability**: what NVBitFI's missing half-precision
//!    support costs on a binary16 workload (Section VII-A's HHotspot
//!    analysis);
//! 3. **MBU rate**: how the multiple-bit-upset probability moves the
//!    ECC-on DUE rate (SECDED detects exactly the double-bit events).

use crate::experiments::{devices, HarnessConfig};
use beam::{Beam, CrossSections};
use campaign::Campaign;
use gpu_arch::{CodeGen, Precision};
use gpu_sim::SiteClass;
use injector::{Avf, ClassAvf, Injector};
use prediction::{
    characterize_units, memory_footprint, predict, CharacterizeConfig, PredictOptions,
};
use profiler::profile;
use stats::signed_ratio;
use workloads::{build, Benchmark};

/// One row of the φ ablation.
#[derive(Clone, Debug)]
pub struct PhiRow {
    /// Workload name.
    pub name: String,
    /// |signed ratio| with φ applied.
    pub with_phi: f64,
    /// |signed ratio| without φ.
    pub without_phi: f64,
}

/// φ ablation over a few Kepler codes (ECC on).
pub fn ablate_phi(cfg: &HarnessConfig) -> Vec<PhiRow> {
    let (kepler, _) = devices();
    let char_cfg =
        CharacterizeConfig { beam: cfg.bench_beam.clone(), injection: cfg.bench_injection.clone() };
    let units = characterize_units(&kepler, &microbench::suite(&kepler), &char_cfg);

    let mut rows = Vec::new();
    for bench in [Benchmark::Mxm, Benchmark::Hotspot, Benchmark::Gaussian, Benchmark::Mergesort] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w = build(bench, precision, CodeGen::Cuda10, cfg.scale);
        let prof = profile(&w, &kepler);
        let avf = Campaign::new(Avf::new(Injector::NvBitFi), &w, &kepler)
            .budget(cfg.injection.clone())
            .run()
            .expect("injection campaign failed");
        let feet = memory_footprint(&w, &kepler, &prof);
        let measured = Campaign::new(Beam::auto(true), &w, &kepler)
            .budget(cfg.beam.clone())
            .run()
            .expect("beam campaign failed");
        let with_phi =
            predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
        let without =
            predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: false });
        rows.push(PhiRow {
            name: w.name.clone(),
            with_phi: signed_ratio(measured.sdc_fit.fit, with_phi.sdc_fit).abs(),
            without_phi: signed_ratio(measured.sdc_fit.fit, without.sdc_fit).abs(),
        });
    }
    rows
}

/// The half-precision capability ablation.
#[derive(Clone, Debug)]
pub struct HalfCapabilityResult {
    /// SDC AVF NVBitFI reports on HHOTSPOT (no half-precision sites).
    pub avf_without_half: f64,
    /// SDC AVF a hypothetical half-capable injector measures.
    pub avf_with_half: f64,
    /// Beam-measured SDC FIT of HHOTSPOT (ECC on).
    pub beam_fit: f64,
    /// Prediction using the real NVBitFI AVF (float-sibling substitution).
    pub predicted_without_half: f64,
    /// Prediction using the half-capable AVF.
    pub predicted_with_half: f64,
}

/// What NVBitFI's half-precision gap costs on HHotspot (Section VII-A).
pub fn ablate_half_capability(cfg: &HarnessConfig) -> HalfCapabilityResult {
    let (_, volta) = devices();
    let char_cfg =
        CharacterizeConfig { beam: cfg.bench_beam.clone(), injection: cfg.bench_injection.clone() };
    let units = characterize_units(&volta, &microbench::suite(&volta), &char_cfg);

    let h = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, cfg.scale);
    let f = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, cfg.scale);
    let prof = profile(&h, &volta);
    let feet = memory_footprint(&h, &volta, &prof);

    // Real NVBitFI: cannot touch half ops; the paper substitutes the
    // float variant's AVF.
    let avf_f = Campaign::new(Avf::new(Injector::NvBitFi), &f, &volta)
        .budget(cfg.injection.clone())
        .run()
        .expect("injection campaign failed");
    // Hypothetical injector with half support: all GPR writers.
    let avf_h = Campaign::new(ClassAvf::new(SiteClass::GprWriter), &h, &volta)
        .budget(cfg.injection.clone())
        .run()
        .expect("injection campaign failed");

    let measured = Campaign::new(Beam::auto(true), &h, &volta)
        .budget(cfg.beam.clone())
        .run()
        .expect("beam campaign failed");
    let p_without =
        predict(&prof, &avf_f, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
    let p_with =
        predict(&prof, &avf_h, &units, &feet, &PredictOptions { ecc: true, use_phi: true });

    HalfCapabilityResult {
        avf_without_half: avf_f.sdc_avf(),
        avf_with_half: avf_h.sdc_avf(),
        beam_fit: measured.sdc_fit.fit,
        predicted_without_half: p_without.sdc_fit,
        predicted_with_half: p_with.sdc_fit,
    }
}

/// One row of the MBU sweep.
#[derive(Clone, Debug)]
pub struct MbuRow {
    /// MBU probability used.
    pub mbu: f64,
    /// ECC-on SDC FIT.
    pub sdc_fit: f64,
    /// ECC-on DUE FIT.
    pub due_fit: f64,
}

/// Sweep the multiple-bit-upset probability and measure the ECC-on rates:
/// SECDED converts exactly the MBU fraction into detections.
pub fn ablate_mbu(cfg: &HarnessConfig) -> Vec<MbuRow> {
    let (kepler, _) = devices();
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, cfg.scale);
    let mut rows = Vec::new();
    for mbu in [0.0, 0.02, 0.10, 0.30] {
        let mut xsec = CrossSections::ground_truth(&kepler);
        xsec.mbu_probability = mbu;
        let r = Campaign::new(Beam::auto(true).with_xsec(xsec), &w, &kepler)
            .budget(cfg.beam.clone())
            .run()
            .expect("beam campaign failed");
        rows.push(MbuRow { mbu, sdc_fit: r.sdc_fit.fit, due_fit: r.due_fit.fit });
    }
    rows
}

/// Render all three ablations.
pub fn render(cfg: &HarnessConfig) -> String {
    use std::fmt::Write;
    let mut out = String::new();

    let _ = writeln!(out, "Ablation 1: phi = occupancy x IPC (Equation 4)");
    let _ = writeln!(out, "{:-<56}", "");
    let _ = writeln!(out, "{:<12} {:>14} {:>14}", "code", "|ratio| w/ phi", "w/o phi");
    let rows = ablate_phi(cfg);
    for r in &rows {
        let _ = writeln!(out, "{:<12} {:>14.1} {:>14.1}", r.name, r.with_phi, r.without_phi);
    }
    let gm = |v: Vec<f64>| stats::geometric_mean(&v);
    let _ = writeln!(
        out,
        "geo-mean     {:>14.1} {:>14.1}",
        gm(rows.iter().map(|r| r.with_phi).collect()),
        gm(rows.iter().map(|r| r.without_phi).collect())
    );

    let _ = writeln!(out, "\nAblation 2: NVBitFI half-precision capability (HHOTSPOT)");
    let _ = writeln!(out, "{:-<56}", "");
    let h = ablate_half_capability(cfg);
    let _ = writeln!(out, "  AVF, float-sibling substitution : {:.3}", h.avf_without_half);
    let _ = writeln!(out, "  AVF, half-capable injector      : {:.3}", h.avf_with_half);
    let _ = writeln!(out, "  beam SDC FIT                    : {:.3e}", h.beam_fit);
    let _ = writeln!(
        out,
        "  prediction (substituted AVF)    : {:.3e}  ({:+.1}x)",
        h.predicted_without_half,
        signed_ratio(h.beam_fit, h.predicted_without_half)
    );
    let _ = writeln!(
        out,
        "  prediction (half-capable AVF)   : {:.3e}  ({:+.1}x)",
        h.predicted_with_half,
        signed_ratio(h.beam_fit, h.predicted_with_half)
    );

    let _ = writeln!(out, "\nAblation 3: MBU probability vs ECC-on rates (FMXM, Kepler)");
    let _ = writeln!(out, "{:-<56}", "");
    let _ = writeln!(out, "{:>6} {:>14} {:>14}", "MBU", "SDC FIT", "DUE FIT");
    for r in ablate_mbu(cfg) {
        let _ = writeln!(out, "{:>5.0}% {:>14.3e} {:>14.3e}", r.mbu * 100.0, r.sdc_fit, r.due_fit);
    }
    out
}
