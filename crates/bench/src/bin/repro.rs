//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table1   Table I   (shared / registers / IPC / occupancy)
//! repro fig1     Figure 1  (instruction mix per code)
//! repro fig3     Figure 3  (micro-benchmark FIT rates)
//! repro fig4     Figure 4  (AVF per code, SASSIFI vs NVBitFI)
//! repro fig5     Figure 5  (beam FIT per code, ECC off/on)
//! repro fig6     Figure 6  (fault simulation vs beam ratio)
//! repro due      Section VII-B (DUE underestimation factors)
//! repro gap      Section VII-B closure (DUE gap vs hidden coverage)
//! repro ablate   phi / injector-capability / MBU ablations
//! repro codegen  CUDA7-vs-CUDA10 AVF study (same injector)
//! repro breakdown  per-instruction-class AVF decomposition
//! repro convergence  AVF CI width vs campaign size
//! repro device   full pipeline on a spec-resolved device (--device)
//! repro all      everything above, in order
//! ```
//!
//! Device selection (anywhere on the command line):
//!
//! ```text
//! --list-devices       print the device registry (builtins plus any
//!                      --device-dir specs) and exit
//! --device NAME|PATH   resolve the target device for `repro device` by
//!                      registry id (k40c, v100, titan-v, a100, ...) or
//!                      by `.spec` file path; recorded in the run report
//! --device-dir DIR     load every `*.spec` under DIR into the registry
//!                      before resolving (bring-your-own-device)
//! ```
//!
//! Observability flags (anywhere on the command line):
//!
//! ```text
//! --metrics-out FILE   write one JSON line per campaign (outcome tallies
//!                      by site class and DUE kind, trials/sec, profile
//!                      φ/IPC/occupancy gauges) to FILE instead of stdout
//! --trace-out FILE     capture a JSONL trace of one demonstration
//!                      injection trial (FMXM on Kepler) to FILE
//! --progress           render a stderr progress meter per campaign
//! --progress-interval MS  minimum milliseconds between progress renders
//!                      (default 200; implies --progress)
//! --checkpoint-dir DIR durable checkpoint store: campaigns save
//!                      shard-boundary checkpoints under DIR and a
//!                      re-run resumes each campaign from its last
//!                      checkpoint (kill-safe; applies to the observed
//!                      commands table1/fig3/fig4/fig5/all)
//! --spans-out FILE     write campaign → shard → trial → engine-phase
//!                      spans as Chrome Trace Event Format JSON (load in
//!                      chrome://tracing or Perfetto)
//! --status-dir DIR     publish status.json + status.prom into DIR every
//!                      second while campaigns run (watch live with
//!                      `campaign-top --dir DIR`; scrape status.prom
//!                      with Prometheus)
//! ```
//!
//! Campaign sizes honor `REPRO_PROFILE=quick|full` (default `quick`).

use std::fs::File;
use std::io::{BufWriter, Write};

use bench::{
    avf_breakdown, codegen_comparison, convergence, device_pipeline_observed, due_analysis, fig1,
    fig3_observed, fig4_observed, fig5_observed, fig6, hidden_gap_closure, render, table1_observed,
    CampaignObservation, DeviceReport, GapClosure, HarnessConfig, ObserveCtx,
};
use gpu_arch::{DeviceRegistry, DeviceSpec};
use obs::RunReport;

struct Flags {
    metrics_out: Option<String>,
    trace_out: Option<String>,
    progress: bool,
    progress_interval: Option<std::time::Duration>,
    checkpoint_dir: Option<String>,
    spans_out: Option<String>,
    status_dir: Option<String>,
    device: Option<String>,
    device_dir: Option<String>,
    list_devices: bool,
}

/// Split observability flags out of the argument list; everything else is
/// returned as positional arguments.
fn parse_flags(args: Vec<String>) -> (Flags, Vec<String>) {
    let mut flags = Flags {
        metrics_out: None,
        trace_out: None,
        progress: false,
        progress_interval: None,
        checkpoint_dir: None,
        spans_out: None,
        status_dir: None,
        device: None,
        device_dir: None,
        list_devices: false,
    };
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    let file_arg = |flag: &str, it: &mut std::vec::IntoIter<String>| match it.next() {
        Some(path) => path,
        None => {
            eprintln!("{flag} requires a FILE argument");
            std::process::exit(2);
        }
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics-out" => flags.metrics_out = Some(file_arg("--metrics-out", &mut it)),
            "--trace-out" => flags.trace_out = Some(file_arg("--trace-out", &mut it)),
            "--progress" => flags.progress = true,
            "--progress-interval" => {
                let ms = file_arg("--progress-interval", &mut it);
                let ms: u64 = ms.parse().unwrap_or_else(|_| {
                    eprintln!("--progress-interval requires a millisecond count, got {ms:?}");
                    std::process::exit(2);
                });
                flags.progress = true;
                flags.progress_interval = Some(std::time::Duration::from_millis(ms));
            }
            "--checkpoint-dir" => {
                flags.checkpoint_dir = Some(file_arg("--checkpoint-dir", &mut it));
            }
            "--spans-out" => flags.spans_out = Some(file_arg("--spans-out", &mut it)),
            "--status-dir" => flags.status_dir = Some(file_arg("--status-dir", &mut it)),
            "--device" => flags.device = Some(file_arg("--device", &mut it)),
            "--device-dir" => flags.device_dir = Some(file_arg("--device-dir", &mut it)),
            "--list-devices" => flags.list_devices = true,
            _ => rest.push(a),
        }
    }
    (flags, rest)
}

/// Capture a JSONL trace of one injection trial: the 11th dynamic
/// single-precision arithmetic instruction of FMXM (tiny, Kepler) has one
/// output bit flipped, and every engine hook point streams to `path`.
fn write_demo_trace(path: &str) {
    use gpu_arch::{CodeGen, Precision};
    use gpu_sim::{BitFlip, ExecStatus, FaultPlan, RunOptions, SiteClass, Target};
    let device = gpu_arch::DeviceModel::named("k40c-sim");
    let w = workloads::build(
        workloads::Benchmark::Mxm,
        Precision::Single,
        CodeGen::Cuda10,
        workloads::Scale::Tiny,
    );
    let file = BufWriter::new(File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    }));
    let mut sink = obs::JsonlTraceSink::new(file);
    let opts = RunOptions::trial(FaultPlan::InstructionOutput {
        nth: 10,
        site: SiteClass::FloatArith,
        flip: BitFlip::single(3),
    })
    .ecc(false);
    let out = w.execute_traced(&device, &opts, &mut sink);
    let mut writer = sink.into_inner();
    writer.flush().expect("flush trace file");
    let mut report = RunReport::new("trace");
    report
        .push_str("target", &w.name)
        .push_str("path", path)
        .push_uint("instructions", out.counts.total)
        .push_str(
            "status",
            match out.status {
                ExecStatus::Completed => "completed",
                ExecStatus::Due(kind) => kind.name(),
            },
        );
    println!("{}", report.to_json_line());
}

fn main() {
    let (flags, args) = parse_flags(std::env::args().skip(1).collect());
    let what = args.first().map(String::as_str).unwrap_or("help").to_string();
    let cfg = HarnessConfig::from_env();

    // Device registry: builtins plus any --device-dir overlays; shared by
    // --list-devices and the `device` command's --device resolution.
    let mut registry = DeviceRegistry::builtin().clone();
    if let Some(dir) = &flags.device_dir {
        if let Err(e) = registry.add_dir(std::path::Path::new(dir), false) {
            eprintln!("--device-dir {dir}: {e}");
            std::process::exit(1);
        }
    }
    if flags.list_devices {
        print!("{}", render::device_list(&registry.summaries()));
        return;
    }
    let device_spec: Option<DeviceSpec> = flags.device.as_ref().map(|token| {
        registry.resolve_spec(token).unwrap_or_else(|e| {
            eprintln!("--device {token}: {e}");
            std::process::exit(1);
        })
    });

    if let Some(path) = &flags.trace_out {
        write_demo_trace(path);
        if args.is_empty() {
            return; // trace-only invocation
        }
    }

    // Campaign observations go to --metrics-out when given, stdout
    // otherwise (before the human tables render).
    let mut sink: Box<dyn Write> = match &flags.metrics_out {
        Some(path) => Box::new(BufWriter::new(File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        }))),
        None => Box::new(std::io::stdout()),
    };
    let mut campaigns = 0u64;
    let mut store =
        flags.checkpoint_dir.as_ref().map(|dir| match campaign::CheckpointStore::open(dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("cannot open checkpoint store {dir}: {e}");
                std::process::exit(1);
            }
        });
    let mut gap_set: Option<GapClosure> = None;
    let mut device_set: Option<DeviceReport> = None;
    let spans = flags.spans_out.as_ref().map(|_| obs::SpanBus::new());
    let publisher = flags.status_dir.as_ref().map(|dir| {
        match obs::SnapshotPublisher::start(dir, std::time::Duration::from_secs(1)) {
            Ok(publisher) => publisher,
            Err(e) => {
                eprintln!("cannot start status publisher in {dir}: {e}");
                std::process::exit(1);
            }
        }
    });
    {
        let mut observe = |o: CampaignObservation| {
            campaigns += 1;
            sink.write_all(o.to_json_line().as_bytes()).expect("write campaign metrics");
            sink.write_all(b"\n").expect("write campaign metrics");
        };
        let mut ctx = ObserveCtx {
            progress: flags.progress,
            progress_interval: flags.progress_interval,
            observe: &mut observe,
            store: store.as_mut(),
            spans: spans.as_ref(),
            publisher: publisher.as_ref(),
        };

        match what.as_str() {
            "table1" => print!("{}", render::table1(&table1_observed(&cfg, &mut ctx))),
            "fig1" => print!("{}", render::fig1(&fig1(&cfg))),
            "fig3" => print!("{}", render::fig3(&fig3_observed(&cfg, &mut ctx))),
            "fig4" => print!("{}", render::fig4(&fig4_observed(&cfg, &mut ctx))),
            "fig5" => print!("{}", render::fig5(&fig5_observed(&cfg, &mut ctx))),
            "fig6" => {
                let set = fig6(&cfg);
                print!("{}", render::fig6(&set));
                println!();
                print!("{}", render::due(&due_analysis(&set)));
            }
            "ablate" => print!("{}", bench::ablations::render(&cfg)),
            "codegen" => print!("{}", render::codegen(&codegen_comparison(&cfg))),
            "breakdown" => print!("{}", render::breakdown(&avf_breakdown(&cfg))),
            "convergence" => {
                print!("{}", render::convergence(&convergence(&cfg, workloads::Benchmark::Hotspot)))
            }
            "due" => {
                let set = fig6(&cfg);
                print!("{}", render::due(&due_analysis(&set)));
            }
            "gap" => {
                let set = hidden_gap_closure(&cfg);
                print!("{}", render::gap(&set));
                gap_set = Some(set);
            }
            "device" => {
                let Some(spec) = &device_spec else {
                    eprintln!(
                        "repro device requires --device <name|path>; \
                         see --list-devices for the registry"
                    );
                    std::process::exit(2);
                };
                let report = device_pipeline_observed(spec, &cfg, Some(&mut ctx));
                print!("{}", render::device_report(&report));
                device_set = Some(report);
            }
            "all" => {
                print!("{}", render::table1(&table1_observed(&cfg, &mut ctx)));
                println!();
                print!("{}", render::fig1(&fig1(&cfg)));
                println!();
                print!("{}", render::fig3(&fig3_observed(&cfg, &mut ctx)));
                println!();
                print!("{}", render::fig4(&fig4_observed(&cfg, &mut ctx)));
                println!();
                print!("{}", render::fig5(&fig5_observed(&cfg, &mut ctx)));
                println!();
                let set = fig6(&cfg);
                print!("{}", render::fig6(&set));
                println!();
                print!("{}", render::due(&due_analysis(&set)));
                println!();
                let gaps = hidden_gap_closure(&cfg);
                print!("{}", render::gap(&gaps));
                gap_set = Some(gaps);
            }
            _ => {
                eprintln!(
                    "usage: repro <table1|fig1|fig3|fig4|fig5|fig6|due|gap|ablate|codegen|convergence|breakdown|device|all>\n\
                     \x20      [--device NAME|PATH] [--device-dir DIR] [--list-devices]\n\
                     \x20      [--metrics-out FILE] [--trace-out FILE] [--progress]\n\
                     \x20      [--progress-interval MS] [--checkpoint-dir DIR]\n\
                     \x20      [--spans-out FILE] [--status-dir DIR]\n\
                     env:   REPRO_PROFILE=quick|full (default quick)"
                );
                std::process::exit(2);
            }
        }
    }
    // Gap-closure rows join the campaign observations in the metrics
    // stream, one `{"report":"hidden_gap",...}` line per ladder rung.
    if let Some(set) = &gap_set {
        sink.write_all(set.to_json_lines().as_bytes()).expect("write gap metrics");
    }
    // Device comparison rows likewise, one `{"report":"device_row",...}`
    // line per (code, ECC) point.
    if let Some(set) = &device_set {
        sink.write_all(set.to_json_lines().as_bytes()).expect("write device metrics");
    }
    sink.flush().expect("flush metrics");
    if let Some(store) = &store {
        for warning in store.warnings() {
            eprintln!("checkpoint-store: {warning}");
        }
    }
    if let (Some(bus), Some(path)) = (&spans, &flags.spans_out) {
        bus.write_chrome_trace(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot write spans to {path}: {e}");
            std::process::exit(1);
        });
    }
    drop(publisher); // join the interval thread; final publish on drop

    // Machine-readable run summary, after the human-readable tables.
    let mut report = RunReport::new("run");
    report
        .push_str("command", &what)
        .push_str(
            "profile",
            &std::env::var("REPRO_PROFILE").unwrap_or_else(|_| "quick".to_string()),
        )
        .push_uint("campaigns", campaigns);
    // Identify the target silicon in the archived run artifact.
    if let Some(spec) = &device_spec {
        report
            .push_str("device", &spec.name)
            .push_str("device_id", &spec.id)
            .push_str("device_arch", spec.arch.name())
            .push_uint("device_sms", spec.sms as u64);
    }
    if let Some(path) = &flags.metrics_out {
        report.push_str("metrics_out", path);
    }
    if let (Some(bus), Some(path)) = (&spans, &flags.spans_out) {
        report.push_str("spans_out", path).push_uint("spans", bus.len() as u64);
    }
    if let Some(dir) = &flags.status_dir {
        report.push_str("status_dir", dir);
    }
    if let Some(store) = &store {
        report
            .push_uint("store_damage_events", store.damage_events())
            .push_uint("store_lock_breaks", store.lock_breaks());
    }
    println!("{}", report.to_json_line());
}
