//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table1   Table I   (shared / registers / IPC / occupancy)
//! repro fig1     Figure 1  (instruction mix per code)
//! repro fig3     Figure 3  (micro-benchmark FIT rates)
//! repro fig4     Figure 4  (AVF per code, SASSIFI vs NVBitFI)
//! repro fig5     Figure 5  (beam FIT per code, ECC off/on)
//! repro fig6     Figure 6  (fault simulation vs beam ratio)
//! repro due      Section VII-B (DUE underestimation factors)
//! repro ablate   phi / injector-capability / MBU ablations
//! repro codegen  CUDA7-vs-CUDA10 AVF study (same injector)
//! repro breakdown  per-instruction-class AVF decomposition
//! repro convergence  AVF CI width vs campaign size
//! repro all      everything above, in order
//! ```
//!
//! Campaign sizes honor `REPRO_PROFILE=quick|full` (default `quick`).

use bench::{
    avf_breakdown, codegen_comparison, convergence, due_analysis, fig1, fig3, fig4, fig5, fig6, render, table1,
    HarnessConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("help");
    let cfg = HarnessConfig::from_env();

    match what {
        "table1" => print!("{}", render::table1(&table1(&cfg))),
        "fig1" => print!("{}", render::fig1(&fig1(&cfg))),
        "fig3" => print!("{}", render::fig3(&fig3(&cfg))),
        "fig4" => print!("{}", render::fig4(&fig4(&cfg))),
        "fig5" => print!("{}", render::fig5(&fig5(&cfg))),
        "fig6" => {
            let set = fig6(&cfg);
            print!("{}", render::fig6(&set));
            println!();
            print!("{}", render::due(&due_analysis(&set)));
        }
        "ablate" => print!("{}", bench::ablations::render(&cfg)),
        "codegen" => print!("{}", render::codegen(&codegen_comparison(&cfg))),
        "breakdown" => print!("{}", render::breakdown(&avf_breakdown(&cfg))),
        "convergence" => {
            print!("{}", render::convergence(&convergence(&cfg, workloads::Benchmark::Hotspot)))
        }
        "due" => {
            let set = fig6(&cfg);
            print!("{}", render::due(&due_analysis(&set)));
        }
        "all" => {
            print!("{}", render::table1(&table1(&cfg)));
            println!();
            print!("{}", render::fig1(&fig1(&cfg)));
            println!();
            print!("{}", render::fig3(&fig3(&cfg)));
            println!();
            print!("{}", render::fig4(&fig4(&cfg)));
            println!();
            print!("{}", render::fig5(&fig5(&cfg)));
            println!();
            let set = fig6(&cfg);
            print!("{}", render::fig6(&set));
            println!();
            print!("{}", render::due(&due_analysis(&set)));
        }
        _ => {
            eprintln!(
                "usage: repro <table1|fig1|fig3|fig4|fig5|fig6|due|ablate|codegen|convergence|breakdown|all>\n\
                 env:   REPRO_PROFILE=quick|full (default quick)"
            );
            std::process::exit(2);
        }
    }
}
