//! `sass-run` — assemble and execute a SASS-like kernel from a text file
//! on a simulated device.
//!
//! ```text
//! sass-run <file.sass> [--device kepler|volta] [--grid N] [--block N]
//!          [--mem BYTES] [--param WORD]... [--dump OFFSET LEN] [--trace N]
//!          [--trace-out FILE]
//! ```
//!
//! The kernel text uses the `gpu_arch::asm` syntax (see that module's
//! docs). Parameters become the constant bank read by `LDP`; `--dump`
//! hex-dumps a region of global memory after the run. `--trace-out`
//! streams every engine hook-point event (instruction retired, memory
//! access, barrier, branch, fault, DUE) as JSON lines to FILE; the run
//! always ends with one machine-readable `{"report":"sass-run",...}`
//! line on stdout.

use std::io::Write as _;

use gpu_arch::{asm, DeviceModel, LaunchConfig};
use gpu_sim::{run_with_sink, ExecStatus, GlobalMemory, RunOptions};
use obs::{JsonlTraceSink, RunReport, TraceSink};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: sass-run <file.sass> [--device kepler|volta] [--grid N] [--block N] [--mem BYTES] [--param WORD]... [--dump OFF LEN]");
        std::process::exit(2);
    }
    let path = &args[0];
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let kernel = match asm::assemble(&source) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("assembly error in {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut device = DeviceModel::named("v100-sim");
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut mem_bytes = 4096u32;
    let mut params = Vec::new();
    let mut dump: Option<(u32, u32)> = None;
    let mut trace = 0usize;
    let mut trace_out: Option<String> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                i += 1;
                device = match args.get(i).map(String::as_str) {
                    Some("kepler") => DeviceModel::named("k40c-sim"),
                    Some("volta") | None => DeviceModel::named("v100-sim"),
                    Some(other) => {
                        eprintln!("unknown device `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            "--grid" => {
                i += 1;
                grid = args[i].parse().expect("bad --grid");
            }
            "--block" => {
                i += 1;
                block = args[i].parse().expect("bad --block");
            }
            "--mem" => {
                i += 1;
                mem_bytes = args[i].parse().expect("bad --mem");
            }
            "--param" => {
                i += 1;
                params.push(parse_word(&args[i]));
            }
            "--trace" => {
                i += 1;
                trace = args[i].parse().expect("bad --trace");
            }
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_out = Some(p.clone()),
                    None => {
                        eprintln!("--trace-out requires a FILE argument");
                        std::process::exit(2);
                    }
                }
            }
            "--dump" => {
                let off = parse_word(&args[i + 1]);
                let len = parse_word(&args[i + 2]);
                i += 2;
                dump = Some((off, len));
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "kernel `{}`: {} instructions, {} regs/thread, {} B shared",
        kernel.name,
        kernel.len(),
        kernel.regs_per_thread,
        kernel.shared_bytes
    );
    let launch = LaunchConfig::new(grid, block, params);
    let opts = RunOptions::golden().trace(trace);
    let mut sink = trace_out.as_deref().map(|path| {
        let file = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        }));
        JsonlTraceSink::new(file)
    });
    let out = run_with_sink(
        &device,
        &kernel,
        &launch,
        GlobalMemory::new(mem_bytes),
        &opts,
        sink.as_mut().map(|s| s as &mut dyn TraceSink),
    );
    if let Some(s) = sink {
        s.into_inner().flush().expect("flush trace file");
    }
    for line in &out.trace {
        println!("{line}");
    }
    match out.status {
        ExecStatus::Completed => println!(
            "completed: {} dynamic instructions, {:.0} modeled cycles, IPC {:.2}",
            out.counts.total, out.timing.cycles, out.timing.ipc
        ),
        ExecStatus::Due(kind) => println!("DUE: {kind}"),
    }
    let mut report = RunReport::new("sass-run");
    report
        .push_str("kernel", &kernel.name)
        .push_str(
            "status",
            match out.status {
                ExecStatus::Completed => "completed",
                ExecStatus::Due(kind) => kind.name(),
            },
        )
        .push_uint("instructions", out.counts.total)
        .push_float("cycles", out.timing.cycles)
        .push_float("ipc", out.timing.ipc)
        .push_float("occupancy", out.timing.achieved_occupancy);
    if let Some(path) = &trace_out {
        report.push_str("trace_out", path);
    }
    println!("{}", report.to_json_line());
    if let Some((off, len)) = dump {
        println!("memory[{off:#x}..{:#x}]:", off + len);
        let raw = out.memory.raw();
        for row in (off..off + len).step_by(16) {
            print!("  {row:08x}:");
            for b in row..(row + 16).min(off + len) {
                print!(" {:02x}", raw[b as usize]);
            }
            println!();
        }
    }
}

fn parse_word(s: &str) -> u32 {
    if let Some(h) = s.strip_prefix("0x") {
        u32::from_str_radix(h, 16).expect("bad hex word")
    } else {
        s.parse().expect("bad word")
    }
}
