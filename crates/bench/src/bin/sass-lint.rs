//! `sass-lint` — static verifier for SASS-like kernels.
//!
//! ```text
//! sass-lint <file.sass> [--grid N] [--block N] [--param WORD]...
//!           [--deny-warnings]
//! sass-lint --workloads [--deny-warnings]
//! ```
//!
//! Runs the `sass-analysis` verifier (CFG + dataflow lints: uninitialized
//! register reads, dead writes, unreachable blocks, barriers under
//! divergent control flow, unsynchronized shared-memory access pairs,
//! out-of-range `LDP` parameter indices) over a kernel assembled from
//! `gpu_arch::asm` text, or — with `--workloads` — over every built-in
//! paper workload kernel.
//!
//! Launch flags give the verifier the launch context the bounds checks
//! need: `--param` words populate the constant bank `LDP` reads.
//!
//! Exit status: 0 clean, 1 diagnostics at error severity (or any
//! diagnostic under `--deny-warnings`), 2 usage error.

use gpu_arch::{asm, CodeGen, LaunchConfig};
use sass_analysis::{verify_with_launch, Diagnostic, Severity};
use workloads::{kepler_suite, volta_suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: sass-lint <file.sass> [--grid N] [--block N] [--param WORD]... [--deny-warnings]\n       sass-lint --workloads [--deny-warnings]"
        );
        std::process::exit(2);
    }

    let mut path: Option<String> = None;
    let mut all_workloads = false;
    let mut deny_warnings = false;
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut params = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => all_workloads = true,
            "--deny-warnings" => deny_warnings = true,
            "--grid" => {
                i += 1;
                grid = args[i].parse().expect("bad --grid");
            }
            "--block" => {
                i += 1;
                block = args[i].parse().expect("bad --block");
            }
            "--param" => {
                i += 1;
                params.push(parse_word(&args[i]));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
            file => {
                if path.replace(file.to_string()).is_some() {
                    eprintln!("multiple input files given");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }

    let mut worst = None;
    if all_workloads {
        let mut suites = kepler_suite(CodeGen::Cuda7, Scale::Tiny);
        suites.extend(kepler_suite(CodeGen::Cuda10, Scale::Tiny));
        suites.extend(volta_suite(Scale::Tiny));
        for w in &suites {
            let diags = verify_with_launch(&w.kernel, &w.launch);
            report(&w.name, &diags, &mut worst);
        }
        println!("linted {} workload kernels", suites.len());
    } else {
        let Some(path) = path else {
            eprintln!("no input file (or pass --workloads)");
            std::process::exit(2);
        };
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let kernel = match asm::assemble(&source) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("assembly error in {path}: {e}");
                std::process::exit(1);
            }
        };
        let launch = LaunchConfig::new(grid, block, params);
        let diags = verify_with_launch(&kernel, &launch);
        report(&kernel.name, &diags, &mut worst);
    }

    match worst {
        Some(Severity::Error) => std::process::exit(1),
        Some(_) if deny_warnings => std::process::exit(1),
        _ => {}
    }
}

fn report(name: &str, diags: &[Diagnostic], worst: &mut Option<Severity>) {
    for d in diags {
        println!("{name}: {d}");
        if worst.is_none_or(|w| d.severity > w) {
            *worst = Some(d.severity);
        }
    }
}

fn parse_word(s: &str) -> u32 {
    if let Some(h) = s.strip_prefix("0x") {
        u32::from_str_radix(h, 16).expect("bad hex word")
    } else {
        s.parse().expect("bad word")
    }
}
