//! `sass-lint` — static verifier for SASS-like kernels.
//!
//! ```text
//! sass-lint <file.sass> [--grid N] [--block N] [--param WORD]...
//!           [--global-bytes N] [--deny-warnings] [--allow LINT]...
//!           [--format text|json] [--verdicts]
//! sass-lint --workloads [--deny-warnings] [--allow LINT]...
//!           [--format text|json] [--verdicts]
//! ```
//!
//! Runs the `sass-analysis` verifier (CFG + dataflow lints: uninitialized
//! register reads, dead GPR and predicate writes, unreachable blocks,
//! redundant guards, barriers under divergent control flow,
//! unsynchronized shared-memory access pairs, out-of-range `LDP`
//! parameter indices) over a kernel assembled from `gpu_arch::asm` text,
//! or — with `--workloads` — over every built-in paper workload kernel.
//!
//! Beyond the lints, every kernel gets a **fault-verdict summary**: the
//! value-flow verdict lattice (`sass_analysis::verdict`) partitions the
//! kernel's injectable site bits into masked / proven-DUE / store /
//! addr+ctl / unknown strata and derives the static SDC/DUE upper
//! bounds. `--verdicts` additionally prints the per-site verdict table
//! (single-file mode) or the per-kernel strata summary (`--workloads`).
//!
//! Launch flags give the verifier and the verdict pass the launch
//! context the bounds checks need: `--param` words populate the constant
//! bank `LDP` reads, `--global-bytes` sizes the out-of-bounds proofs.
//!
//! `--allow LINT` (repeatable, by stable lint name, e.g.
//! `--allow dead-write`) exempts a lint from the exit-status computation
//! — its diagnostics are still printed/serialized, flagged `allowed` —
//! so CI can deny warnings without chasing intentional fixtures.
//!
//! `--format json` emits one machine-readable document on stdout
//! (per-kernel diagnostics plus the verdict summary) for CI artifacts.
//!
//! Exit status: 0 clean, 1 non-allowed diagnostics at error severity (or
//! any non-allowed diagnostic under `--deny-warnings`), 2 usage error.

use gpu_arch::{asm, CodeGen, DecodedKernel, Kernel, LaunchConfig};
use sass_analysis::{
    analyze, verify_with_launch, AnalysisContext, Diagnostic, Severity, VerdictSummary,
};
use workloads::{kepler_suite, volta_suite, Scale};

/// Stable names of every lint, for `--allow` validation.
const LINT_NAMES: [&str; 8] = [
    "uninitialized-read",
    "dead-write",
    "unreachable-block",
    "divergent-barrier",
    "shared-race",
    "ldp-out-of-range",
    "dead-predicate-write",
    "redundant-guard",
];

const USAGE: &str = "usage: sass-lint <file.sass> [--grid N] [--block N] [--param WORD]... [--global-bytes N] [--deny-warnings] [--allow LINT]... [--format text|json] [--verdicts]\n       sass-lint --workloads [--deny-warnings] [--allow LINT]... [--format text|json] [--verdicts]";

enum Format {
    Text,
    Json,
}

/// Everything reported about one kernel.
struct KernelReport {
    name: String,
    diags: Vec<Diagnostic>,
    summary: VerdictSummary,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let mut path: Option<String> = None;
    let mut all_workloads = false;
    let mut deny_warnings = false;
    let mut verdicts = false;
    let mut format = Format::Text;
    let mut allowed: Vec<String> = Vec::new();
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut global_bytes: Option<u64> = None;
    let mut params = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => all_workloads = true,
            "--deny-warnings" => deny_warnings = true,
            "--verdicts" => verdicts = true,
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        eprintln!("bad --format {other:?} (expected text|json)");
                        std::process::exit(2);
                    }
                };
            }
            "--allow" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                if !LINT_NAMES.contains(&name.as_str()) {
                    eprintln!(
                        "unknown lint `{name}` for --allow (one of: {})",
                        LINT_NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
                allowed.push(name);
            }
            "--grid" => {
                i += 1;
                grid = args[i].parse().expect("bad --grid");
            }
            "--block" => {
                i += 1;
                block = args[i].parse().expect("bad --block");
            }
            "--global-bytes" => {
                i += 1;
                global_bytes = Some(args[i].parse().expect("bad --global-bytes"));
            }
            "--param" => {
                i += 1;
                params.push(parse_word(&args[i]));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
            file => {
                if path.replace(file.to_string()).is_some() {
                    eprintln!("multiple input files given");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }

    let mut reports = Vec::new();
    if all_workloads {
        let mut suites = kepler_suite(CodeGen::Cuda7, Scale::Tiny);
        suites.extend(kepler_suite(CodeGen::Cuda10, Scale::Tiny));
        suites.extend(volta_suite(Scale::Tiny));
        for w in &suites {
            use gpu_sim::Target;
            let ctx = AnalysisContext::for_launch(&w.launch, w.fresh_memory().len() as u64);
            reports.push(KernelReport {
                name: w.name.clone(),
                diags: verify_with_launch(&w.kernel, &w.launch),
                summary: analyze(&w.kernel, &ctx).summary(),
            });
        }
    } else {
        let Some(path) = path else {
            eprintln!("no input file (or pass --workloads)");
            std::process::exit(2);
        };
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let kernel = match asm::assemble(&source) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("assembly error in {path}: {e}");
                std::process::exit(1);
            }
        };
        let launch = LaunchConfig::new(grid, block, params);
        let ctx = AnalysisContext { launch: Some(launch.clone()), global_bytes };
        reports.push(KernelReport {
            name: kernel.name.clone(),
            diags: verify_with_launch(&kernel, &launch),
            summary: analyze(&kernel, &ctx).summary(),
        });
        if verdicts && matches!(format, Format::Text) {
            print_site_table(&kernel, &ctx);
        }
    }

    // Exit status from non-allowed diagnostics only.
    let mut worst: Option<Severity> = None;
    for r in &reports {
        for d in r.diags.iter().filter(|d| !allowed.iter().any(|a| a == d.kind.name())) {
            if worst.is_none_or(|w| d.severity > w) {
                worst = Some(d.severity);
            }
        }
    }
    let failed = matches!(worst, Some(Severity::Error)) || (deny_warnings && worst.is_some());

    match format {
        Format::Text => {
            for r in &reports {
                for d in &r.diags {
                    let tag =
                        if allowed.iter().any(|a| a == d.kind.name()) { " (allowed)" } else { "" };
                    println!("{}: {d}{tag}", r.name);
                }
                if verdicts || !all_workloads {
                    print_summary(&r.name, &r.summary);
                }
            }
            if all_workloads {
                println!("linted {} workload kernels", reports.len());
            }
        }
        Format::Json => print_json(&reports, &allowed, worst, failed),
    }

    if failed {
        std::process::exit(1);
    }
}

/// One `strata ...` line per kernel: the verdict-lattice partition of the
/// kernel's site bits plus the derived outcome upper bounds.
fn print_summary(name: &str, s: &VerdictSummary) {
    println!(
        "{name}: strata masked={:.3} proven-due={:.3} store={:.3} addr-ctl={:.3} unknown={:.3} | sdc<={:.3} due<={:.3}",
        s.masked,
        s.proven_due,
        s.store,
        s.addr_ctl,
        s.unknown,
        s.sdc_upper(),
        s.due_upper()
    );
}

/// Per-site verdict table (single-file mode): one row per injectable
/// site, with the output/predicate/address verdicts and any proven-DUE
/// output bits.
fn print_site_table(kernel: &Kernel, ctx: &AnalysisContext) {
    let analysis = analyze(kernel, ctx);
    let v = &analysis.verdicts;
    let decoded = DecodedKernel::new(kernel);
    println!(
        "{:>4}  {:<10} {:<8} {:<8} {:<8} proven-due-bits",
        "pc", "op", "output", "pred", "addr"
    );
    for pc in 0..kernel.instrs.len() as u32 {
        let meta = decoded.meta(pc);
        let gpr_site = meta.writes_gpr() && !meta.is_warp_sync;
        if !gpr_site && !meta.writes_pred && !meta.is_mem_op {
            continue;
        }
        let cell = |on: bool, s: &'static str| if on { s } else { "-" };
        let due = v.output_due_bits(pc);
        let due_cell = if due.bits != 0 {
            format!("{:#010x} {:?}", due.bits, due.kind.expect("bits imply kind"))
        } else {
            "-".to_string()
        };
        println!(
            "{pc:>4}  {:<10} {:<8} {:<8} {:<8} {due_cell}",
            format!("{:?}", kernel.instrs[pc as usize].op),
            cell(gpr_site, v.output_verdict(pc).name()),
            cell(meta.writes_pred, v.predicate_verdict(pc).name()),
            cell(meta.is_mem_op, v.mem_verdict(pc).name()),
        );
    }
}

/// Minimal JSON escaping: the only dynamic strings are lint messages and
/// kernel names, which are ASCII, but escape defensively anyway.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(reports: &[KernelReport], allowed: &[String], worst: Option<Severity>, failed: bool) {
    let mut out = String::from("{\n  \"kernels\": [\n");
    for (ki, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(&r.name)));
        out.push_str("      \"diagnostics\": [");
        for (di, d) in r.diags.iter().enumerate() {
            if di > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"lint\": {}, \"severity\": {}, \"pc\": {}, \"message\": {}, \"allowed\": {}}}",
                json_str(d.kind.name()),
                json_str(&d.severity.to_string()),
                d.pc,
                json_str(&d.message),
                allowed.iter().any(|a| a == d.kind.name()),
            ));
        }
        if !r.diags.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n");
        let s = &r.summary;
        out.push_str(&format!(
            "      \"verdicts\": {{\"masked\": {}, \"proven_due\": {}, \"store\": {}, \"addr_ctl\": {}, \"unknown\": {}, \"sdc_upper\": {}, \"due_upper\": {}}}\n",
            s.masked,
            s.proven_due,
            s.store,
            s.addr_ctl,
            s.unknown,
            s.sdc_upper(),
            s.due_upper()
        ));
        out.push_str(if ki + 1 < reports.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"worst\": {},\n",
        worst.map_or("null".to_string(), |w| json_str(&w.to_string()))
    ));
    out.push_str(&format!("  \"failed\": {failed}\n}}"));
    println!("{out}");
}

fn parse_word(s: &str) -> u32 {
    if let Some(h) = s.strip_prefix("0x") {
        u32::from_str_radix(h, 16).expect("bad hex word")
    } else {
        s.parse().expect("bad word")
    }
}
