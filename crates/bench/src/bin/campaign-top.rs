//! `campaign-top` — live dashboard for a running campaign.
//!
//! Point it at the status directory a `repro --status-dir DIR` run is
//! publishing into; it polls `status.json` and redraws a small dashboard
//! (trials, rates, shard progress, CI convergence, trial latency
//! quantiles, retry/quarantine/watchdog counters):
//!
//! ```text
//! campaign-top --dir DIR [--interval MS] [--once]
//! ```
//!
//! `--once` renders a single frame and exits (no screen clearing), which
//! is what scripts and CI use. The reader half of the tmp-file + atomic
//! rename protocol: a read either sees a complete snapshot or the
//! previous one, never a torn file.

use std::path::PathBuf;
use std::time::Duration;

use obs::{console, StatusSnapshot};

struct Options {
    dir: PathBuf,
    interval: Duration,
    once: bool,
}

fn usage() -> ! {
    eprintln!("usage: campaign-top --dir DIR [--interval MS] [--once]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut dir = None;
    let mut interval = Duration::from_millis(500);
    let mut once = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--interval" => {
                let ms = it.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| usage());
                interval = Duration::from_millis(ms);
            }
            "--once" => once = true,
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    Options { dir, interval, once }
}

/// One frame: the rendered snapshot, or a waiting message until the
/// publisher's first atomic rename lands.
fn frame(opts: &Options) -> String {
    let path = opts.dir.join("status.json");
    match std::fs::read_to_string(&path) {
        Ok(line) => match StatusSnapshot::from_json_line(&line) {
            Ok(status) => console::render_status(&status),
            Err(e) => format!("unreadable status in {}: {e}\n", path.display()),
        },
        Err(_) => format!("waiting for status in {} ...\n", opts.dir.display()),
    }
}

fn main() {
    let opts = parse_args();
    if opts.once {
        print!("{}", frame(&opts));
        return;
    }
    loop {
        // ANSI clear + home, then the frame; redraw-in-place keeps the
        // dashboard steady under watch.
        print!("\x1b[2J\x1b[H{}", frame(&opts));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(opts.interval);
    }
}
