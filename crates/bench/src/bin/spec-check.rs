//! `spec-check` — validate the device-spec corpus and emit the device
//! matrix.
//!
//! ```text
//! spec-check [DIR]... [--deny-warnings] [--matrix-out FILE]
//! ```
//!
//! Loads every `*.spec` file under each DIR (default: `specs/devices`)
//! through the full [`gpu_arch::spec`] validation pass and every sibling
//! `*.xsec` beam-calibration file through [`beam::parse_xsec`], printing
//! one status line per file. Validation findings are reported with their
//! field paths (`[sm].fp32_lanes: ...`). `--deny-warnings` fails specs
//! that validate but warn, so CI keeps the corpus lint-clean.
//!
//! After validation, one `{"report":"device_matrix",...}` JSON line per
//! spec — the stable key/value dump of [`gpu_arch::spec::matrix_row`] —
//! goes to `--matrix-out FILE` (stdout otherwise), forming the
//! device-matrix CI artifact.
//!
//! Exit status: 0 clean, 1 any validation failure (or any warning under
//! `--deny-warnings`), 2 usage error.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use gpu_arch::spec::matrix_row;
use gpu_arch::DeviceSpec;

const USAGE: &str = "usage: spec-check [DIR]... [--deny-warnings] [--matrix-out FILE]";

/// One validated spec plus where it came from, for matrix emission.
struct Checked {
    path: PathBuf,
    spec: DeviceSpec,
}

fn matrix_line(c: &Checked) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"report\":\"device_matrix\",\"path\":");
    obs::json::escape_str(&mut out, &c.path.display().to_string());
    for (key, value) in matrix_row(&c.spec) {
        out.push(',');
        obs::json::escape_str(&mut out, key);
        out.push(':');
        obs::json::escape_str(&mut out, &value);
    }
    out.push('}');
    out
}

fn main() {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut deny_warnings = false;
    let mut matrix_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--matrix-out" => match it.next() {
                Some(path) => matrix_out = Some(path),
                None => {
                    eprintln!("--matrix-out requires a FILE argument\n{USAGE}");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                std::process::exit(2);
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() {
        dirs.push(PathBuf::from("specs/devices"));
    }

    let mut failures = 0usize;
    let mut checked: Vec<Checked> = Vec::new();
    for dir in &dirs {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("{}: {e}", dir.display());
                std::process::exit(2);
            }
        };
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for path in paths {
            match path.extension().and_then(|x| x.to_str()) {
                Some("spec") => match DeviceSpec::from_file(&path) {
                    Ok(spec) => {
                        if !spec.warnings.is_empty() {
                            for w in &spec.warnings {
                                println!("{}: warning: {w}", path.display());
                            }
                            if deny_warnings {
                                failures += 1;
                                println!(
                                    "{}: FAIL ({} warning(s) denied)",
                                    path.display(),
                                    spec.warnings.len()
                                );
                                continue;
                            }
                        }
                        println!("{}: ok ({} [{}])", path.display(), spec.name, spec.id);
                        checked.push(Checked { path, spec });
                    }
                    Err(e) => {
                        failures += 1;
                        println!("{}: FAIL\n  {e}", path.display());
                    }
                },
                Some("xsec") => {
                    let text = match std::fs::read_to_string(&path) {
                        Ok(text) => text,
                        Err(e) => {
                            failures += 1;
                            println!("{}: FAIL ({e})", path.display());
                            continue;
                        }
                    };
                    match beam::parse_xsec(&text) {
                        Ok(_) => println!("{}: ok (beam cross-sections)", path.display()),
                        Err(errors) => {
                            failures += 1;
                            println!("{}: FAIL ({} error(s))", path.display(), errors.len());
                            for e in &errors {
                                println!("  {e}");
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // The device matrix covers every spec that validated, failures or not
    // elsewhere in the corpus — CI archives it either way.
    let mut sink: Box<dyn Write> = match &matrix_out {
        Some(path) => Box::new(BufWriter::new(File::create(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        }))),
        None => Box::new(std::io::stdout()),
    };
    for c in &checked {
        writeln!(sink, "{}", matrix_line(c)).expect("write device matrix");
    }
    sink.flush().expect("flush device matrix");

    if failures > 0 {
        eprintln!("spec-check: {failures} file(s) failed");
        std::process::exit(1);
    }
}
