//! Experiment harness: one function per table/figure of the paper.
//!
//! The `repro` binary dispatches to these; Criterion benches wrap the
//! hot paths. Campaign sizes default to laptop-scale "quick" settings and
//! can be scaled with [`HarnessConfig`].

pub mod ablations;
pub mod experiments;
pub mod render;

pub use campaign::Budget;
pub use experiments::{
    avf_breakdown, codegen_comparison, convergence, device_pipeline, device_pipeline_observed,
    due_analysis, fig1, fig3, fig3_observed, fig4, fig4_observed, fig5, fig5_observed, fig6,
    hidden_gap_closure, table1, table1_observed, AvfRow, BeamRow, BreakdownRow,
    CampaignObservation, CodegenRow, ComparisonSet, ConvergenceRow, DeviceReport, DeviceRow,
    Fig3Row, GapClosure, GapRow, HarnessConfig, MixRow, ObserveCtx, ProfileRow,
};
