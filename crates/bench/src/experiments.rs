//! One function per table/figure of the paper.
//!
//! Every function returns plain data; [`crate::render`] turns it into the
//! textual tables the `repro` binary prints. The per-experiment index in
//! DESIGN.md maps each function to its paper counterpart.

use beam::{Beam, BeamResult};
use campaign::{Budget, Campaign};
use gpu_arch::{CodeGen, DeviceModel, DeviceSpec, MixCategory, Precision};
use gpu_sim::Target;
use injector::{Avf, AvfResult, HiddenClass, HiddenCoverage, Injector};
use obs::{CampaignObserver, MetricsRegistry, MetricsSnapshot, Progress};
use prediction::{
    characterize_units, compare, memory_footprint, predict, predict_hidden, CharacterizeConfig,
    ComparisonRow, PredictOptions, UnitFits,
};
use profiler::profile;
use workloads::{build, build_with, kepler_suite, volta_suite, Benchmark, Scale, Workload};

/// Campaign sizing for the harness: one [`Budget`] per campaign family.
///
/// Injection budgets are adaptive (CI-targeted early stopping) in the
/// presets; beam budgets stay fixed because the fluence accounting — and
/// the paper's Poisson error-count statistics — assume a predetermined
/// number of accounted runs.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Workload scale for injection/beam campaigns.
    pub scale: Scale,
    /// Workload scale for the profiling experiments (Table I, Figure 1).
    pub profile_scale: Scale,
    /// Budget per workload AVF campaign.
    pub injection: Budget,
    /// Budget per workload beam campaign.
    pub beam: Budget,
    /// Budget per micro-benchmark beam campaign (Figure 3).
    pub bench_beam: Budget,
    /// Budget per micro-benchmark injection campaign (FIT de-masking AVF).
    pub bench_injection: Budget,
}

impl HarnessConfig {
    /// Laptop-scale settings: every figure regenerates in minutes.
    pub fn quick() -> Self {
        HarnessConfig {
            scale: Scale::Small,
            profile_scale: Scale::Profile,
            injection: Budget::quick(),
            beam: Budget::fixed(4000).seed(2021),
            bench_beam: Budget::fixed(3000).seed(2021),
            bench_injection: Budget::fixed(200).seed(2021),
        }
    }

    /// Larger campaigns approaching the paper's statistics (>=4,000
    /// injections per code).
    pub fn full() -> Self {
        HarnessConfig {
            injection: Budget::full(),
            beam: Budget::fixed(40_000).seed(2021),
            bench_beam: Budget::fixed(20_000).seed(2021),
            bench_injection: Budget::fixed(1000).seed(2021),
            ..HarnessConfig::quick()
        }
    }

    /// Reads `REPRO_PROFILE` (`quick` default, `full`) from the
    /// environment.
    pub fn from_env() -> Self {
        match std::env::var("REPRO_PROFILE").as_deref() {
            Ok("full") => HarnessConfig::full(),
            _ => HarnessConfig::quick(),
        }
    }
}

/// The campaign devices: a 1-SM Kepler and a 1-SM Volta (see DESIGN.md on
/// SM-count scaling).
pub fn devices() -> (DeviceModel, DeviceModel) {
    (DeviceModel::named("k40c-sim"), DeviceModel::named("v100-sim"))
}

// -------------------------------------------------------- observability --

/// One campaign's worth of metrics, labeled for routing into a JSONL
/// stream (`repro --metrics-out`).
#[derive(Clone, Debug)]
pub struct CampaignObservation {
    /// Campaign label, e.g. `fig4/Kepler/SASSIFI/FMXM`.
    pub campaign: String,
    /// Resolved device-model name the campaign ran on.
    pub device: String,
    /// Final metrics: outcome tallies, trials/sec, profile gauges.
    pub snapshot: MetricsSnapshot,
}

impl CampaignObservation {
    /// One JSON line:
    /// `{"report":"campaign","campaign":...,"device":...,"metrics":{...}}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"report\":\"campaign\",\"campaign\":");
        obs::json::escape_str(&mut out, &self.campaign);
        out.push_str(",\"device\":");
        obs::json::escape_str(&mut out, &self.device);
        out.push_str(",\"metrics\":");
        out.push_str(&self.snapshot.to_json_line());
        out.push('}');
        out
    }
}

/// Observation hooks threaded through the `*_observed` experiment
/// variants.
pub struct ObserveCtx<'a> {
    /// Render stderr progress meters while campaigns run.
    pub progress: bool,
    /// Minimum time between progress renders (`repro --progress-interval`;
    /// `None` keeps the 200ms default).
    pub progress_interval: Option<std::time::Duration>,
    /// Receives one observation per campaign, in execution order.
    pub observe: &'a mut dyn FnMut(CampaignObservation),
    /// Durable checkpoint store shared by every campaign in the run:
    /// each campaign saves shard-boundary checkpoints to it and resumes
    /// automatically from its own last checkpoint (`repro
    /// --checkpoint-dir`).
    pub store: Option<&'a mut campaign::CheckpointStore>,
    /// Span bus collecting campaign → shard → trial → engine-phase spans
    /// across every campaign in the run (`repro --spans-out`).
    pub spans: Option<&'a obs::SpanBus>,
    /// Live status publisher (`repro --status-dir`): re-pointed at each
    /// campaign's registry as it starts, so `campaign-top` always shows
    /// the campaign currently running.
    pub publisher: Option<&'a obs::SnapshotPublisher>,
}

impl<'a> ObserveCtx<'a> {
    /// Shared per-campaign telemetry setup: a fresh registry (Arc so the
    /// background publisher can snapshot it concurrently), a progress
    /// meter honoring `--progress-interval`, and an observer carrying the
    /// run-wide span bus.
    fn begin_campaign(
        &self,
        label: &str,
        device: &DeviceModel,
        ceiling: u64,
    ) -> (std::sync::Arc<MetricsRegistry>, Progress) {
        let metrics = std::sync::Arc::new(MetricsRegistry::new());
        let mut meter = Progress::new(label, ceiling, self.progress);
        if let Some(interval) = self.progress_interval {
            meter = meter.with_interval(interval);
        }
        if let Some(publisher) = self.publisher {
            publisher.set_campaign(label, device.name.clone(), std::sync::Arc::clone(&metrics));
        }
        (metrics, meter)
    }

    /// Shared per-campaign teardown: finish the meter, append profile
    /// gauges, force one status publish and hand off the observation.
    fn end_campaign<T: Target + Sync + ?Sized>(
        &mut self,
        label: &str,
        metrics: &MetricsRegistry,
        meter: &Progress,
        target: &T,
        device: &DeviceModel,
    ) {
        meter.finish();
        profile(target, device).export_metrics(metrics);
        if let Some(publisher) = self.publisher {
            let _ = publisher.publish_now();
        }
        (self.observe)(CampaignObservation {
            campaign: label.to_string(),
            device: device.name.clone(),
            snapshot: metrics.snapshot(),
        });
    }
}

/// Run one AVF campaign on the shared engine; when observed, tally
/// per-trial metrics, tick a progress meter (total = budget ceiling;
/// adaptive campaigns may finish early), append the workload's profile
/// gauges, and emit one [`CampaignObservation`].
fn observed_avf<T: Target + Sync + ?Sized>(
    label: &str,
    injector_kind: Injector,
    target: &T,
    device: &DeviceModel,
    budget: &Budget,
    ctx: Option<&mut ObserveCtx<'_>>,
) -> Result<AvfResult, injector::Unsupported> {
    injector_kind.supports(target, device)?;
    let campaign = Campaign::new(Avf::new(injector_kind), target, device).budget(budget.clone());
    let Some(ctx) = ctx else {
        return Ok(campaign.run().expect("injection campaign failed"));
    };
    let (metrics, meter) = ctx.begin_campaign(label, device, budget.ceiling as u64);
    let mut observer = CampaignObserver::with_metrics(&metrics);
    observer.progress = Some(&meter);
    observer.spans = ctx.spans;
    let campaign = match ctx.store.as_deref_mut() {
        Some(store) => campaign.store(store),
        None => campaign,
    };
    let result = campaign.observer(observer).run().expect("injection campaign failed");
    ctx.end_campaign(label, &metrics, &meter, target, device);
    Ok(result)
}

/// [`observed_avf`]'s beam counterpart.
fn observed_beam<T: Target + Sync + ?Sized>(
    label: &str,
    target: &T,
    device: &DeviceModel,
    ecc: bool,
    budget: &Budget,
    ctx: Option<&mut ObserveCtx<'_>>,
) -> BeamResult {
    let campaign = Campaign::new(Beam::auto(ecc), target, device).budget(budget.clone());
    let Some(ctx) = ctx else {
        return campaign.run().expect("beam campaign failed");
    };
    let (metrics, meter) = ctx.begin_campaign(label, device, budget.ceiling as u64);
    let mut observer = CampaignObserver::with_metrics(&metrics);
    observer.progress = Some(&meter);
    observer.spans = ctx.spans;
    let campaign = match ctx.store.as_deref_mut() {
        Some(store) => campaign.store(store),
        None => campaign,
    };
    let result = campaign.observer(observer).run().expect("beam campaign failed");
    ctx.end_campaign(label, &metrics, &meter, target, device);
    result
}

// ------------------------------------------------------------- Table I --

/// One Table I row.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// Bytes of shared memory per block.
    pub shared: u32,
    /// Registers per thread.
    pub regs: u16,
    /// Executed IPC.
    pub ipc: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

/// Regenerate Table I: per-code shared memory, registers, IPC, occupancy.
pub fn table1(cfg: &HarnessConfig) -> Vec<ProfileRow> {
    table1_impl(cfg, None)
}

/// [`table1`] emitting one observation (φ/IPC/occupancy gauges) per code.
pub fn table1_observed(cfg: &HarnessConfig, ctx: &mut ObserveCtx<'_>) -> Vec<ProfileRow> {
    table1_impl(cfg, Some(ctx))
}

fn table1_impl(cfg: &HarnessConfig, mut ctx: Option<&mut ObserveCtx<'_>>) -> Vec<ProfileRow> {
    let (kepler, volta) = devices();
    let mut rows = Vec::new();
    let sets = [
        ("Kepler", &kepler, kepler_suite(CodeGen::Cuda7, cfg.profile_scale)),
        ("Volta", &volta, volta_suite(cfg.profile_scale)),
    ];
    for (device_label, dm, suite) in sets {
        for w in suite {
            let p = profile(&w, dm);
            if let Some(c) = ctx.as_deref_mut() {
                let metrics = MetricsRegistry::new();
                p.export_metrics(&metrics);
                (c.observe)(CampaignObservation {
                    campaign: format!("table1/{device_label}/{}", w.name),
                    device: dm.name.clone(),
                    snapshot: metrics.snapshot(),
                });
            }
            rows.push(ProfileRow {
                device: device_label,
                name: w.name.clone(),
                shared: p.shared_bytes,
                regs: p.regs_per_thread,
                ipc: p.ipc,
                occupancy: p.occupancy,
            });
        }
    }
    rows
}

// ------------------------------------------------------------ Figure 1 --

/// One Figure 1 bar: the instruction mix of a code.
#[derive(Clone, Debug)]
pub struct MixRow {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// Fractions in [`MixCategory::ALL`] order.
    pub fractions: [f64; MixCategory::COUNT],
}

/// Regenerate Figure 1: instruction-type percentages per code.
pub fn fig1(cfg: &HarnessConfig) -> Vec<MixRow> {
    let (kepler, volta) = devices();
    let mut rows = Vec::new();
    for w in kepler_suite(CodeGen::Cuda7, cfg.profile_scale) {
        let p = profile(&w, &kepler);
        rows.push(MixRow { device: "Kepler", name: w.name.clone(), fractions: p.mix_fractions });
    }
    for w in volta_suite(cfg.profile_scale) {
        let p = profile(&w, &volta);
        rows.push(MixRow { device: "Volta", name: w.name.clone(), fractions: p.mix_fractions });
    }
    rows
}

// ------------------------------------------------------------ Figure 3 --

/// One Figure 3 bar pair: a micro-benchmark's SDC and DUE FIT.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Micro-benchmark name ("FADD", "HMMA", "RF/MB", ...).
    pub name: String,
    /// Raw SDC FIT (arbitrary units).
    pub sdc_fit: f64,
    /// Raw DUE FIT.
    pub due_fit: f64,
    /// SDC normalized to the device's reference DUE (FADD on Kepler, HFMA
    /// on Volta), as in the figure.
    pub sdc_norm: f64,
    /// Normalized DUE.
    pub due_norm: f64,
}

fn fig3_device(
    device: &DeviceModel,
    cfg: &HarnessConfig,
    mut ctx: Option<&mut ObserveCtx<'_>>,
) -> Vec<Fig3Row> {
    let label = device.arch.name();
    let benches = microbench::suite(device);
    let mut raws: Vec<(String, BeamResult, Option<f64>)> = Vec::new();
    for mb in &benches {
        let is_rf = mb.name == "RF";
        let obs_label = format!("fig3/{label}/{}", mb.name);
        let res =
            observed_beam(&obs_label, mb, device, !is_rf, &cfg.bench_beam, ctx.as_deref_mut());
        let per_mb = if is_rf {
            // Report the register file per megabyte, as the figure does.
            let golden = mb.execute_golden(device);
            let resident_threads = golden.timing.resident_warps * 32.0 * device.sms as f64;
            let bits = mb.kernel.regs_per_thread.max(16) as f64 * 32.0 * resident_threads;
            Some(8_388_608.0 / bits) // bits per megabyte / exposed bits
        } else {
            None
        };
        raws.push((mb.name.clone(), res, per_mb));
    }
    // Normalization reference from the device spec: FADD DUE on Kepler,
    // HFMA DUE on Volta/Ampere.
    let reference_name = device.caps.fig3_reference.as_str();
    let reference = raws
        .iter()
        .find(|(n, _, _)| n == reference_name)
        .map(|(_, r, _)| r.due_fit.fit)
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0);
    raws.into_iter()
        .map(|(name, r, per_mb)| {
            let scale = per_mb.unwrap_or(1.0);
            let display = if name == "RF" { "RF/MB".to_string() } else { name };
            Fig3Row {
                device: label,
                name: display,
                sdc_fit: r.sdc_fit.fit * scale,
                due_fit: r.due_fit.fit * scale,
                sdc_norm: r.sdc_fit.fit * scale / reference,
                due_norm: r.due_fit.fit * scale / reference,
            }
        })
        .collect()
}

/// Regenerate Figure 3: micro-benchmark FIT rates, both devices.
pub fn fig3(cfg: &HarnessConfig) -> Vec<Fig3Row> {
    fig3_impl(cfg, None)
}

/// [`fig3`] with per-campaign observation (metrics snapshots, progress).
pub fn fig3_observed(cfg: &HarnessConfig, ctx: &mut ObserveCtx<'_>) -> Vec<Fig3Row> {
    fig3_impl(cfg, Some(ctx))
}

fn fig3_impl(cfg: &HarnessConfig, mut ctx: Option<&mut ObserveCtx<'_>>) -> Vec<Fig3Row> {
    let (kepler, volta) = devices();
    let mut rows = fig3_device(&kepler, cfg, ctx.as_deref_mut());
    rows.extend(fig3_device(&volta, cfg, ctx));
    rows
}

// ------------------------------------------------------------ Figure 4 --

/// One Figure 4 stacked bar: a code's AVF under one injector.
#[derive(Clone, Debug)]
pub struct AvfRow {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// "SASSIFI" or "NVBitFI".
    pub injector: Injector,
    /// SDC AVF.
    pub sdc: f64,
    /// DUE AVF.
    pub due: f64,
    /// Masked fraction.
    pub masked: f64,
}

impl AvfRow {
    fn from(device: &'static str, r: &AvfResult) -> AvfRow {
        AvfRow {
            device,
            name: r.target.clone(),
            injector: r.injector,
            sdc: r.sdc_avf(),
            due: r.due_avf(),
            masked: r.masked,
        }
    }
}

/// The Volta Figure 4 set: F and D variants of the mixed-precision codes.
fn volta_fig4_set(scale: Scale) -> Vec<Workload> {
    use Benchmark::*;
    use Precision::*;
    [
        (Hotspot, Single),
        (Hotspot, Double),
        (Lava, Single),
        (Lava, Double),
        (Mxm, Single),
        (Mxm, Double),
        (Gemm, Single),
        (Gemm, Double),
        (Yolov2, Single),
        (Yolov3, Single),
    ]
    .into_iter()
    .map(|(b, p)| build(b, p, CodeGen::Cuda10, scale))
    .collect()
}

/// Regenerate Figure 4: per-code AVF. On Kepler both injectors run (each
/// on the codegen it supports); on Volta only NVBitFI. SASSIFI rows are
/// absent for proprietary-library codes, as on real hardware.
pub fn fig4(cfg: &HarnessConfig) -> Vec<AvfRow> {
    fig4_impl(cfg, None)
}

/// [`fig4`] with per-campaign observation (metrics snapshots, progress).
pub fn fig4_observed(cfg: &HarnessConfig, ctx: &mut ObserveCtx<'_>) -> Vec<AvfRow> {
    fig4_impl(cfg, Some(ctx))
}

fn fig4_impl(cfg: &HarnessConfig, mut ctx: Option<&mut ObserveCtx<'_>>) -> Vec<AvfRow> {
    let (kepler, volta) = devices();
    let mut rows = Vec::new();
    let budget = &cfg.injection;

    for w in kepler_suite(CodeGen::Cuda7, cfg.scale) {
        let label = format!("fig4/Kepler/SASSIFI/{}", w.name);
        if let Ok(r) =
            observed_avf(&label, Injector::Sassifi, &w, &kepler, budget, ctx.as_deref_mut())
        {
            rows.push(AvfRow::from("Kepler", &r));
        }
    }
    for w in kepler_suite(CodeGen::Cuda10, cfg.scale) {
        let label = format!("fig4/Kepler/NVBitFI/{}", w.name);
        let r = observed_avf(&label, Injector::NvBitFi, &w, &kepler, budget, ctx.as_deref_mut())
            .expect("NVBitFI supports Kepler");
        rows.push(AvfRow::from("Kepler", &r));
    }
    for w in volta_fig4_set(cfg.scale) {
        let label = format!("fig4/Volta/NVBitFI/{}", w.name);
        let r = observed_avf(&label, Injector::NvBitFi, &w, &volta, budget, ctx.as_deref_mut())
            .expect("NVBitFI supports Volta");
        rows.push(AvfRow::from("Volta", &r));
    }
    rows
}

// ------------------------------------------------------------ Figure 5 --

/// One Figure 5 bar pair: a code's beam SDC/DUE FIT under one ECC state.
#[derive(Clone, Debug)]
pub struct BeamRow {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// ECC enabled?
    pub ecc: bool,
    /// Raw FITs.
    pub sdc_fit: f64,
    /// Raw DUE FIT.
    pub due_fit: f64,
    /// Observed error counts backing the estimate.
    pub sdc_errors: u64,
    /// DUE count.
    pub due_errors: u64,
}

/// The Kepler ECC-OFF beam set of Figure 5.
fn kepler_ecc_off_set(scale: Scale) -> Vec<Workload> {
    use Benchmark::*;
    [Hotspot, Lava, Mxm, Nw, Mergesort, Quicksort, Gemm, Yolov2, Yolov3]
        .into_iter()
        .map(|b| {
            let p = if b.is_integer() { Precision::Int32 } else { Precision::Single };
            build(b, p, CodeGen::Cuda10, scale)
        })
        .collect()
}

/// The Volta beam sets of Figure 5: (ECC OFF, ECC ON).
fn volta_fig5_sets(scale: Scale) -> (Vec<Workload>, Vec<Workload>) {
    use Benchmark::*;
    use Precision::*;
    let off = [
        (Hotspot, Half),
        (Hotspot, Single),
        (Hotspot, Double),
        (Lava, Half),
        (Lava, Single),
        (Lava, Double),
        (Mxm, Half),
        (Mxm, Single),
        (Mxm, Double),
        (Gemm, Half),
        (Gemm, Single),
        (Gemm, Double),
    ]
    .into_iter()
    .map(|(b, p)| build(b, p, CodeGen::Cuda10, scale))
    .collect();
    let on = [(GemmMma, Half), (GemmMma, Single), (Yolov3, Half), (Yolov3, Single)]
        .into_iter()
        .map(|(b, p)| build(b, p, CodeGen::Cuda10, scale))
        .collect();
    (off, on)
}

fn beam_row(
    device: &'static str,
    w: &Workload,
    dm: &DeviceModel,
    ecc: bool,
    cfg: &HarnessConfig,
    ctx: Option<&mut ObserveCtx<'_>>,
) -> BeamRow {
    let label = format!("fig5/{device}/ecc-{}/{}", if ecc { "on" } else { "off" }, w.name);
    let res = observed_beam(&label, w, dm, ecc, &cfg.beam, ctx);
    BeamRow {
        device,
        name: w.name.clone(),
        ecc,
        sdc_fit: res.sdc_fit.fit,
        due_fit: res.due_fit.fit,
        sdc_errors: res.counts.sdc,
        due_errors: res.counts.due,
    }
}

/// Regenerate Figure 5: workload beam FIT rates, ECC off and on.
pub fn fig5(cfg: &HarnessConfig) -> Vec<BeamRow> {
    fig5_impl(cfg, None)
}

/// [`fig5`] with per-campaign observation (metrics snapshots, progress).
pub fn fig5_observed(cfg: &HarnessConfig, ctx: &mut ObserveCtx<'_>) -> Vec<BeamRow> {
    fig5_impl(cfg, Some(ctx))
}

fn fig5_impl(cfg: &HarnessConfig, mut ctx: Option<&mut ObserveCtx<'_>>) -> Vec<BeamRow> {
    let (kepler, volta) = devices();
    let mut rows = Vec::new();
    for w in kepler_ecc_off_set(cfg.scale) {
        rows.push(beam_row("Kepler", &w, &kepler, false, cfg, ctx.as_deref_mut()));
    }
    for w in kepler_suite(CodeGen::Cuda10, cfg.scale) {
        rows.push(beam_row("Kepler", &w, &kepler, true, cfg, ctx.as_deref_mut()));
    }
    let (off, on) = volta_fig5_sets(cfg.scale);
    for w in off {
        rows.push(beam_row("Volta", &w, &volta, false, cfg, ctx.as_deref_mut()));
    }
    for w in on {
        rows.push(beam_row("Volta", &w, &volta, true, cfg, ctx.as_deref_mut()));
    }
    rows
}

// ------------------------------------------------------------ Figure 6 --

/// One Figure 6 point plus its DUE-channel companion.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// ECC state of the comparison.
    pub ecc: bool,
    /// AVF source series ("SASSIFI", "NVBitFI").
    pub injector: Injector,
    /// The comparison itself.
    pub row: ComparisonRow,
}

/// All Figure 6 data plus the unit characterization it used.
#[derive(Clone, Debug)]
pub struct ComparisonSet {
    /// Individual code comparisons.
    pub rows: Vec<Fig6Row>,
    /// Kepler unit FITs (measured).
    pub kepler_units: UnitFits,
    /// Volta unit FITs (measured).
    pub volta_units: UnitFits,
}

impl ComparisonSet {
    /// Geometric-mean |ratio| for a (device, ecc, injector) series.
    pub fn average_magnitude(&self, device: &str, ecc: bool, injector: Injector) -> f64 {
        let mags: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.device == device && r.ecc == ecc && r.injector == injector)
            .map(|r| r.row.sdc_ratio.abs())
            .filter(|m| m.is_finite())
            .collect();
        stats::geometric_mean(&mags)
    }

    /// Fraction of predictions within `factor`x of the measurement.
    pub fn within_factor(&self, factor: f64) -> f64 {
        let all: Vec<&Fig6Row> = self.rows.iter().filter(|r| r.row.sdc_ratio.is_finite()).collect();
        if all.is_empty() {
            return f64::NAN;
        }
        let close = all.iter().filter(|r| r.row.sdc_ratio.abs() <= factor).count();
        close as f64 / all.len() as f64
    }

    /// Average DUE underestimation factor for a (device, ecc) group.
    pub fn due_factor(&self, device: &str, ecc: bool) -> f64 {
        let f: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.device == device && r.ecc == ecc)
            .map(|r| r.row.due_underestimation)
            .filter(|v| v.is_finite() && *v > 0.0)
            .collect();
        stats::geometric_mean(&f)
    }
}

/// AVF lookup strategy mirroring Section VII: SASSIFI on the CUDA 7 build;
/// NVBitFI on the CUDA 10 build; proprietary codes on Kepler borrow the
/// Volta NVBitFI AVF; half-precision codes borrow their single-precision
/// sibling's AVF (NVBitFI cannot inject into half instructions).
struct AvfBank {
    kepler_sassifi: Vec<AvfResult>,
    kepler_nvbitfi: Vec<AvfResult>,
    volta_nvbitfi: Vec<AvfResult>,
}

impl AvfBank {
    fn find<'a>(pool: &'a [AvfResult], name: &str) -> Option<&'a AvfResult> {
        pool.iter().find(|r| r.target == name)
    }

    /// The AVF used for predicting `name` on Kepler with `injector`.
    fn kepler(&self, name: &str, injector: Injector) -> Option<&AvfResult> {
        let pool = match injector {
            Injector::Sassifi => &self.kepler_sassifi,
            Injector::NvBitFi => &self.kepler_nvbitfi,
        };
        Self::find(pool, name)
            // Proprietary-library codes: borrow the Volta NVBitFI AVF
            // (Section III-D's substitution).
            .or_else(|| Self::find(&self.volta_nvbitfi, name))
    }

    /// The AVF used for predicting `name` on Volta.
    fn volta(&self, w: &Workload) -> Option<&AvfResult> {
        if w.precision == Precision::Half {
            // NVBitFI cannot inject into half-precision instructions; the
            // paper substitutes the float variant's AVF.
            let sibling = w.benchmark.display_name(Precision::Single);
            return Self::find(&self.volta_nvbitfi, &sibling)
                .or_else(|| Self::find(&self.volta_nvbitfi, &w.name));
        }
        Self::find(&self.volta_nvbitfi, &w.name)
    }
}

/// Regenerate Figure 6 (and the Section VII-B DUE analysis): beam-measured
/// vs predicted SDC FIT for every code, ECC off and on, both devices.
pub fn fig6(cfg: &HarnessConfig) -> ComparisonSet {
    let (kepler, volta) = devices();
    let measure_avf = |injector: Injector, w: &Workload, dm: &DeviceModel| {
        injector.supports(w, dm)?;
        Ok::<AvfResult, injector::Unsupported>(
            Campaign::new(Avf::new(injector), w, dm)
                .budget(cfg.injection.clone())
                .run()
                .expect("injection campaign failed"),
        )
    };
    let expose = |w: &Workload, dm: &DeviceModel, ecc: bool| {
        Campaign::new(Beam::auto(ecc), w, dm)
            .budget(cfg.beam.clone())
            .run()
            .expect("beam campaign failed")
    };
    let char_cfg =
        CharacterizeConfig { beam: cfg.bench_beam.clone(), injection: cfg.bench_injection.clone() };

    // 1. Characterize the functional units on both devices (Figure 3 data
    //    in usable form).
    let kepler_units = characterize_units(&kepler, &microbench::suite(&kepler), &char_cfg);
    let volta_units = characterize_units(&volta, &microbench::suite(&volta), &char_cfg);

    // 2. AVF banks.
    let mut bank = AvfBank {
        kepler_sassifi: Vec::new(),
        kepler_nvbitfi: Vec::new(),
        volta_nvbitfi: Vec::new(),
    };
    for w in kepler_suite(CodeGen::Cuda7, cfg.scale) {
        if let Ok(r) = measure_avf(Injector::Sassifi, &w, &kepler) {
            bank.kepler_sassifi.push(r);
        }
    }
    for w in kepler_suite(CodeGen::Cuda10, cfg.scale) {
        if let Ok(r) = measure_avf(Injector::NvBitFi, &w, &kepler) {
            bank.kepler_nvbitfi.push(r);
        }
    }
    // Volta AVFs: every (benchmark, precision) the Volta comparisons need,
    // plus single-precision variants of the Kepler proprietary codes.
    let mut volta_avf_targets = volta_suite(cfg.scale);
    volta_avf_targets.push(build(Benchmark::Yolov2, Precision::Single, CodeGen::Cuda10, cfg.scale));
    for w in &volta_avf_targets {
        if w.precision == Precision::Half {
            continue; // predictions use the float sibling
        }
        if let Ok(r) = measure_avf(Injector::NvBitFi, w, &volta) {
            bank.volta_nvbitfi.push(r);
        }
    }

    // 3. Per-code comparisons.
    let mut rows = Vec::new();

    // Kepler, both ECC states. The beam runs the CUDA 10 build.
    let kepler_sets: [(bool, Vec<Workload>); 2] =
        [(false, kepler_ecc_off_set(cfg.scale)), (true, kepler_suite(CodeGen::Cuda10, cfg.scale))];
    for (ecc, set) in kepler_sets {
        for w in &set {
            let prof = profile(w, &kepler);
            let feet = memory_footprint(w, &kepler, &prof);
            let measured = expose(w, &kepler, ecc);
            for injector in [Injector::Sassifi, Injector::NvBitFi] {
                let Some(avf) = bank.kepler(&w.name, injector) else { continue };
                let pred = predict(
                    &prof,
                    avf,
                    &kepler_units,
                    &feet,
                    &PredictOptions { ecc, use_phi: true },
                );
                rows.push(Fig6Row {
                    device: "Kepler",
                    name: w.name.clone(),
                    ecc,
                    injector,
                    row: compare(&w.name, &measured, &pred),
                });
            }
        }
    }

    // Volta.
    let (off, on) = volta_fig5_sets(cfg.scale);
    for (ecc, set) in [(false, off), (true, on)] {
        for w in &set {
            let prof = profile(w, &volta);
            let feet = memory_footprint(w, &volta, &prof);
            let measured = expose(w, &volta, ecc);
            let Some(avf) = bank.volta(w) else { continue };
            let pred =
                predict(&prof, avf, &volta_units, &feet, &PredictOptions { ecc, use_phi: true });
            rows.push(Fig6Row {
                device: "Volta",
                name: w.name.clone(),
                ecc,
                injector: Injector::NvBitFi,
                row: compare(&w.name, &measured, &pred),
            });
        }
    }

    ComparisonSet { rows, kepler_units, volta_units }
}

// ------------------------------------------------- Section VII-B (DUE) --

/// Aggregated DUE underestimation factors per (device, ECC) group.
#[derive(Clone, Debug)]
pub struct DueSummary {
    /// Group label, e.g. "Kepler ECC OFF".
    pub group: String,
    /// Geometric-mean measured/predicted DUE factor.
    pub factor: f64,
}

/// The Section VII-B analysis: how badly fault simulation underestimates
/// DUE rates.
pub fn due_analysis(set: &ComparisonSet) -> Vec<DueSummary> {
    let mut out = Vec::new();
    for (device, ecc) in [("Kepler", false), ("Kepler", true), ("Volta", false), ("Volta", true)] {
        let factor = set.due_factor(device, ecc);
        out.push(DueSummary {
            group: format!("{device} ECC {}", if ecc { "ON" } else { "OFF" }),
            factor,
        });
    }
    out
}

// --------------------------------- hidden-resource DUE gap closure --

/// One rung of the hidden-coverage ladder for one code: how close the
/// DUE prediction gets to the beam measurement when the injector reaches
/// this subset of hidden resources.
#[derive(Clone, Debug)]
pub struct GapRow {
    /// "Kepler" or "Volta".
    pub device: &'static str,
    /// Workload name.
    pub name: String,
    /// Coverage label ("none", "scheduler", ..., "full").
    pub coverage: String,
    /// Live hidden classes the coverage reaches on this code.
    pub covered: usize,
    /// Fraction of the code's hidden strike rate the coverage reaches.
    pub rate_coverage: f64,
    /// Beam-measured DUE FIT (the ground truth, fixed per code).
    pub measured_due: f64,
    /// Predicted DUE FIT at this coverage.
    pub predicted_due: f64,
    /// The hidden-resource share of `predicted_due`.
    pub predicted_hidden_due: f64,
    /// Measured / predicted: the Section VII-B underestimation factor.
    pub gap: f64,
}

/// The full gap-closure ladder: per code, the DUE prediction gap at each
/// hidden-coverage level, from register-only ("none", today's injectors)
/// to full hidden-resource coverage.
#[derive(Clone, Debug)]
pub struct GapClosure {
    /// Rows grouped by code, coverage levels in ladder order.
    pub rows: Vec<GapRow>,
    /// Coverage levels per code.
    pub levels: usize,
}

impl GapClosure {
    /// Distinct code names, in run order.
    pub fn codes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.name.as_str()) {
                out.push(&r.name);
            }
        }
        out
    }

    /// One code's rows, in ladder order.
    pub fn ladder(&self, name: &str) -> Vec<&GapRow> {
        self.rows.iter().filter(|r| r.name == name).collect()
    }

    /// One JSON line per rung (`{"report":"hidden_gap",...}`), for the CI
    /// gap-closure artifact.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 160);
        for r in &self.rows {
            out.push_str("{\"report\":\"hidden_gap\",\"device\":");
            obs::json::escape_str(&mut out, r.device);
            out.push_str(",\"code\":");
            obs::json::escape_str(&mut out, &r.name);
            out.push_str(",\"coverage\":");
            obs::json::escape_str(&mut out, &r.coverage);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"covered\":{},\"rate_coverage\":{},\"measured_due\":{},\
                     \"predicted_due\":{},\"predicted_hidden_due\":{},\"gap\":{}}}\n",
                    r.covered,
                    r.rate_coverage,
                    r.measured_due,
                    r.predicted_due,
                    r.predicted_hidden_due,
                    r.gap
                ),
            );
        }
        out
    }
}

/// The coverage ladder the gap study climbs: register-only, one hidden
/// class, the SM-front-end classes, everything.
fn coverage_ladder() -> [HiddenCoverage; 4] {
    [
        HiddenCoverage::none(),
        HiddenCoverage::of(&[HiddenClass::Scheduler]),
        HiddenCoverage::of(&[HiddenClass::Scheduler, HiddenClass::Fetch, HiddenClass::Mask]),
        HiddenCoverage::full(),
    ]
}

/// The Section VII-B closure experiment: hold the beam DUE measurement
/// and the architectural (register-level) prediction fixed per code, then
/// grow the hidden-injection coverage rung by rung and watch the
/// measured/predicted DUE gap shrink from its orders-of-magnitude
/// register-only size toward 1.
///
/// Everything on the prediction side is measured blind: hidden strike
/// rates come from [`beam::characterize_hidden`] (a simulated calibration
/// experiment, not the ground-truth cross-sections) and the per-class
/// P(DUE | strike) from [`injector::measure_hidden_breakdown`] campaigns.
pub fn hidden_gap_closure(cfg: &HarnessConfig) -> GapClosure {
    let (_, volta) = devices();
    let char_cfg =
        CharacterizeConfig { beam: cfg.bench_beam.clone(), injection: cfg.bench_injection.clone() };
    let units = characterize_units(&volta, &microbench::suite(&volta), &char_cfg);
    let rates = beam::characterize_hidden(&volta, cfg.beam.ceiling, cfg.beam.seed);
    let ladder = coverage_ladder();

    let mut rows = Vec::new();
    for bench in [Benchmark::Mxm, Benchmark::Hotspot] {
        let w = build(bench, Precision::Single, CodeGen::Cuda10, cfg.scale);
        let prof = profile(&w, &volta);
        let feet = memory_footprint(&w, &volta, &prof);
        let avf = Campaign::new(Avf::new(Injector::NvBitFi), &w, &volta)
            .budget(cfg.injection.clone())
            .run()
            .expect("injection campaign failed");
        let measured = Campaign::new(Beam::auto(true), &w, &volta)
            .budget(cfg.beam.clone())
            .run()
            .expect("beam campaign failed");
        let breakdown = injector::measure_hidden_breakdown(&w, &volta, &cfg.injection);
        let base =
            predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
        for coverage in ladder {
            let term = predict_hidden(&prof, &rates, &breakdown, coverage);
            let row = compare(&w.name, &measured, &base.with_hidden(&term));
            rows.push(GapRow {
                device: "Volta",
                name: w.name.clone(),
                coverage: coverage.label(),
                covered: breakdown.per_class.iter().filter(|(c, _)| coverage.covers(*c)).count(),
                rate_coverage: term.rate_coverage,
                measured_due: row.measured_due,
                predicted_due: row.predicted_due,
                predicted_hidden_due: row.predicted_hidden_due,
                gap: row.due_underestimation,
            });
        }
    }
    GapClosure { rows, levels: ladder.len() }
}

// -------------------------------------------- spec-driven device run --

/// One workload's beam-vs-prediction comparison from a spec-resolved
/// device run (the hidden DUE term is always included at full coverage).
#[derive(Clone, Debug)]
pub struct DeviceRow {
    /// Workload name.
    pub name: String,
    /// ECC state of the comparison.
    pub ecc: bool,
    /// AVF source series.
    pub injector: Injector,
    /// The comparison itself.
    pub row: ComparisonRow,
}

/// The full-pipeline report for an arbitrary device resolved from the
/// registry or a user spec file (`repro device --device <name|path>`).
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// Registry id of the spec the run resolved.
    pub id: String,
    /// Marketing name of the board the spec describes.
    pub device: String,
    /// Architecture generation name.
    pub arch: String,
    /// SM count of the full board (campaigns run the 1-SM variant).
    pub sms: u32,
    /// Measured functional-unit FITs on this device.
    pub units: UnitFits,
    /// Per-code comparisons, ECC states in spec-capability order.
    pub rows: Vec<DeviceRow>,
}

impl DeviceReport {
    /// One JSON line per comparison (`{"report":"device_row",...}`), for
    /// the metrics stream / CI device artifact.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 200);
        for r in &self.rows {
            out.push_str("{\"report\":\"device_row\",\"id\":");
            obs::json::escape_str(&mut out, &self.id);
            out.push_str(",\"device\":");
            obs::json::escape_str(&mut out, &self.device);
            out.push_str(",\"arch\":");
            obs::json::escape_str(&mut out, &self.arch);
            out.push_str(",\"code\":");
            obs::json::escape_str(&mut out, &r.name);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"ecc\":{},\"injector\":\"{}\",\"measured_sdc\":{},\
                     \"predicted_sdc\":{},\"sdc_ratio\":{},\"measured_due\":{},\
                     \"predicted_due\":{},\"predicted_hidden_due\":{}}}\n",
                    r.ecc,
                    r.injector,
                    r.row.measured_sdc,
                    r.row.predicted_sdc,
                    r.row.sdc_ratio,
                    r.row.measured_due,
                    r.row.predicted_due,
                    r.row.predicted_hidden_due
                ),
            );
        }
        out
    }
}

/// The codes a spec-driven device run compares (one dense arithmetic
/// kernel, one stencil, one irregular molecular-dynamics kernel).
fn device_suite() -> [Benchmark; 3] {
    [Benchmark::Mxm, Benchmark::Hotspot, Benchmark::Lava]
}

/// Run the paper's whole methodology — unit characterization, register
/// AVF, hidden-resource calibration + injection, beam exposure,
/// prediction — on one spec-resolved device and report Figure 6-style
/// comparison rows. Everything downstream of the spec is table-driven:
/// workloads build with the spec's codegen-quirk profile, the injector
/// follows the spec's tooling capability (SASSIFI where supported,
/// NVBitFI otherwise), and beam campaigns run only the ECC states the
/// board can actually be put in.
pub fn device_pipeline(spec: &DeviceSpec, cfg: &HarnessConfig) -> DeviceReport {
    device_pipeline_observed(spec, cfg, None)
}

/// [`device_pipeline`] with the observation hooks of the other
/// `*_observed` experiments.
pub fn device_pipeline_observed(
    spec: &DeviceSpec,
    cfg: &HarnessConfig,
    mut ctx: Option<&mut ObserveCtx<'_>>,
) -> DeviceReport {
    // Campaigns run the derived single-SM variant (see DESIGN.md on
    // SM-count scaling); the report carries the full board's identity.
    let device = spec.sim_model();
    let char_cfg =
        CharacterizeConfig { beam: cfg.bench_beam.clone(), injection: cfg.bench_injection.clone() };
    let units = characterize_units(&device, &microbench::suite(&device), &char_cfg);
    let rates = beam::characterize_hidden(&device, cfg.beam.ceiling, cfg.beam.seed);
    let codegen = spec.codegen_profile();
    let injector_kind = if spec.sassifi { Injector::Sassifi } else { Injector::NvBitFi };
    let ecc_states: &[bool] = if spec.ecc_toggle { &[false, true] } else { &[true] };

    let mut rows = Vec::new();
    for bench in device_suite() {
        let w = build_with(bench, Precision::Single, &codegen, cfg.scale);
        let prof = profile(&w, &device);
        let feet = memory_footprint(&w, &device, &prof);
        let avf = observed_avf(
            &format!("device/{}/{}", spec.id, w.name),
            injector_kind,
            &w,
            &device,
            &cfg.injection,
            ctx.as_deref_mut(),
        )
        .expect("spec-selected injector rejected its own device");
        let breakdown = injector::measure_hidden_breakdown(&w, &device, &cfg.injection);
        let term = predict_hidden(&prof, &rates, &breakdown, HiddenCoverage::full());
        for &ecc in ecc_states {
            let measured = observed_beam(
                &format!("device/{}/{}/ecc-{}", spec.id, w.name, if ecc { "on" } else { "off" }),
                &w,
                &device,
                ecc,
                &cfg.beam,
                ctx.as_deref_mut(),
            );
            let pred = predict(&prof, &avf, &units, &feet, &PredictOptions { ecc, use_phi: true })
                .with_hidden(&term);
            rows.push(DeviceRow {
                name: w.name.clone(),
                ecc,
                injector: injector_kind,
                row: compare(&w.name, &measured, &pred),
            });
        }
    }
    DeviceReport {
        id: spec.id.clone(),
        device: spec.name.clone(),
        arch: spec.arch.name().to_string(),
        sms: spec.sms,
        units,
        rows,
    }
}

// ------------------------------------------- compiler-generation study --

/// One row of the codegen comparison: the same source, two back ends,
/// one injector.
#[derive(Clone, Debug)]
pub struct CodegenRow {
    /// Workload name (CUDA 10 naming).
    pub name: String,
    /// SDC AVF of the CUDA 7-era binary.
    pub avf_cuda7: f64,
    /// SDC AVF of the CUDA 10-era binary.
    pub avf_cuda10: f64,
    /// Dynamic instructions of each binary (the optimizer's footprint).
    pub dyn_cuda7: u64,
    /// CUDA 10 dynamic count.
    pub dyn_cuda10: u64,
}

/// Isolate the compiler-generation effect the paper identifies as the
/// main driver of the SASSIFI/NVBitFI AVF gap (Section VI): measure the
/// same codes with the *same* injector (NVBitFI) on both codegen levels.
/// Optimized code executes fewer, more "useful" instructions, raising
/// the probability that a corrupted value reaches the output.
pub fn codegen_comparison(cfg: &HarnessConfig) -> Vec<CodegenRow> {
    let (kepler, _) = devices();
    let avf = |w: &Workload| {
        Campaign::new(Avf::new(Injector::NvBitFi), w, &kepler)
            .budget(cfg.injection.clone())
            .run()
            .expect("injection campaign failed")
    };
    let mut rows = Vec::new();
    for bench in [
        Benchmark::Mxm,
        Benchmark::Hotspot,
        Benchmark::Lava,
        Benchmark::Gaussian,
        Benchmark::Lud,
        Benchmark::Nw,
        Benchmark::Ccl,
        Benchmark::Mergesort,
    ] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w7 = build(bench, precision, CodeGen::Cuda7, cfg.scale);
        let w10 = build(bench, precision, CodeGen::Cuda10, cfg.scale);
        let a7 = avf(&w7);
        let a10 = avf(&w10);
        let g7 = w7.execute_golden(&kepler);
        let g10 = w10.execute_golden(&kepler);
        rows.push(CodegenRow {
            name: w10.name.clone(),
            avf_cuda7: a7.sdc_avf(),
            avf_cuda10: a10.sdc_avf(),
            dyn_cuda7: g7.counts.total,
            dyn_cuda10: g10.counts.total,
        });
    }
    rows
}

// ----------------------------------------------- campaign convergence --

/// One point of the convergence study.
#[derive(Clone, Debug)]
pub struct ConvergenceRow {
    /// Injection count.
    pub injections: u32,
    /// SDC AVF point estimate.
    pub sdc_avf: f64,
    /// Wilson 95% CI width (`hi - lo`).
    pub ci_width: f64,
}

/// How the AVF estimate converges with campaign size — the paper sizes
/// campaigns so that "95% confidence intervals \[are\] lower than 5%"
/// (Section III-D).
pub fn convergence(cfg: &HarnessConfig, benchmark: Benchmark) -> Vec<ConvergenceRow> {
    let (kepler, _) = devices();
    let precision = if benchmark.is_integer() { Precision::Int32 } else { Precision::Single };
    let w = build(benchmark, precision, CodeGen::Cuda10, cfg.scale);
    let mut rows = Vec::new();
    for n in [100u32, 250, 500, 1000, 2000, 4000] {
        let r = Campaign::new(Avf::new(Injector::NvBitFi), &w, &kepler)
            .budget(Budget::fixed(n).seed(cfg.injection.seed))
            .run()
            .expect("injection campaign failed");
        rows.push(ConvergenceRow {
            injections: n,
            sdc_avf: r.sdc_avf(),
            ci_width: r.sdc.2 - r.sdc.1,
        });
    }
    rows
}

// ------------------------------------------------- per-class AVF table --

/// Per-site-class AVF rows for a few representative codes — the
/// decomposition the paper's conclusion asks for ("identify which
/// instruction or resource, once corrupted, is more likely to affect the
/// GPU computation").
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Class label ("FP", "INT", "LD", "HALF").
    pub class: &'static str,
    /// SDC AVF for injections restricted to that class.
    pub sdc: f64,
    /// DUE AVF.
    pub due: f64,
}

/// Measure per-class AVFs for a representative code set.
pub fn avf_breakdown(cfg: &HarnessConfig) -> Vec<BreakdownRow> {
    use gpu_sim::SiteClass;
    let (kepler, _) = devices();
    let label = |c: SiteClass| match c {
        SiteClass::FloatArith => "FP",
        SiteClass::HalfArith => "HALF",
        SiteClass::IntArith => "INT",
        SiteClass::Load => "LD",
        _ => "?",
    };
    let mut rows = Vec::new();
    for bench in [Benchmark::Mxm, Benchmark::Hotspot, Benchmark::Nw, Benchmark::Mergesort] {
        let precision = if bench.is_integer() { Precision::Int32 } else { Precision::Single };
        let w = build(bench, precision, CodeGen::Cuda10, cfg.scale);
        let b = injector::measure_avf_breakdown(&w, &kepler, &cfg.injection);
        for (class, r) in &b.per_class {
            rows.push(BreakdownRow {
                name: w.name.clone(),
                class: label(*class),
                sdc: r.sdc_avf(),
                due: r.due_avf(),
            });
        }
    }
    rows
}
