//! Hot-loop throughput of the interpreter: dynamic instructions per
//! second of wall clock, on representative golden runs.
//!
//! This is the number the predecode layer (DESIGN.md §14) exists to move:
//! every campaign pays the `step()` loop thousands of times, so
//! instructions/second is the unit cost of every table and figure. The
//! bench is self-reporting — alongside the human-readable lines it writes
//! `BENCH_sim_throughput.json` (override the path with the
//! `BENCH_JSON_PATH` environment variable) so CI can record the perf
//! trajectory per commit.
//!
//! Run modes:
//! * `cargo bench -p bench --bench sim_throughput` — full measurement;
//! * `... -- --test` (or `--smoke`) — CI smoke mode: one warmup and a
//!   short measurement window, still emitting the JSON.

use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::Target;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use workloads::{build, Benchmark, Scale, Workload};

struct Case {
    name: &'static str,
    workload: Workload,
    device: DeviceModel,
}

struct Measurement {
    name: &'static str,
    dyn_instrs: u64,
    /// Best (minimum) seconds per golden run over the sample set.
    best_secs: f64,
    mean_secs: f64,
    samples: usize,
}

impl Measurement {
    fn instrs_per_sec(&self) -> f64 {
        self.dyn_instrs as f64 / self.best_secs
    }
}

fn measure(case: &Case, budget_secs: f64, min_samples: usize) -> Measurement {
    // One untimed run warms caches and yields the dynamic-instruction
    // count the rates are computed from.
    let golden = case.workload.execute_golden(&case.device);
    assert!(golden.status.completed(), "{}: golden run failed", case.name);
    let dyn_instrs = golden.counts.total;

    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < min_samples || start.elapsed().as_secs_f64() < budget_secs {
        let t = Instant::now();
        black_box(case.workload.execute_golden(&case.device));
        samples.push(t.elapsed().as_secs_f64());
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Measurement {
        name: case.name,
        dyn_instrs,
        best_secs: best,
        mean_secs: mean,
        samples: samples.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (budget_secs, min_samples) = if smoke { (0.2, 2) } else { (2.0, 10) };

    let cases = [
        Case {
            name: "mxm_f32_small",
            workload: build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::k40c_sim(),
        },
        Case {
            name: "hotspot_f32_small",
            workload: build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::k40c_sim(),
        },
        Case {
            name: "gemm_mma_h16_small",
            workload: build(Benchmark::GemmMma, Precision::Half, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::v100_sim(),
        },
    ];

    let results: Vec<Measurement> =
        cases.iter().map(|c| measure(c, budget_secs, min_samples)).collect();

    for m in &results {
        println!(
            "sim_throughput/{:<20} {:>8.2} M dyn-instrs/s  (best {:.3} ms, mean {:.3} ms, {} dyn instrs, {} samples)",
            m.name,
            m.instrs_per_sec() / 1e6,
            m.best_secs * 1e3,
            m.mean_secs * 1e3,
            m.dyn_instrs,
            m.samples,
        );
    }

    let path = std::env::var("BENCH_JSON_PATH")
        .unwrap_or_else(|_| "BENCH_sim_throughput.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"unit\": \"dyn_instrs_per_sec\",\n  \"cases\": [\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"dyn_instrs\": {}, \"best_secs\": {:.9}, \"mean_secs\": {:.9}, \"instrs_per_sec\": {:.1}}}{}",
            m.name,
            m.dyn_instrs,
            m.best_secs,
            m.mean_secs,
            m.instrs_per_sec(),
            sep
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("sim_throughput: could not write {path}: {e}");
    } else {
        println!("sim_throughput: wrote {path}");
    }
}
