//! Hot-loop throughput of the interpreter: dynamic instructions per
//! second of wall clock, on representative golden runs.
//!
//! This is the number the predecode layer (DESIGN.md §14) exists to move:
//! every campaign pays the `step()` loop thousands of times, so
//! instructions/second is the unit cost of every table and figure. The
//! bench is self-reporting — alongside the human-readable lines it writes
//! `BENCH_sim_throughput.json` (override the path with the
//! `BENCH_JSON_PATH` environment variable) so CI can record the perf
//! trajectory per commit.
//!
//! The campaign section measures trials/second twice — with the golden
//! snapshot fast-forward (DESIGN.md §16) enabled and disabled — and
//! reports the speedup, plus a snapshot-cache size report
//! (`BENCH_sim_throughput_snapshot_cache.txt`, override with
//! `BENCH_SNAPSHOT_CACHE_PATH`) for the CI artifact.
//!
//! Run modes:
//! * `cargo bench -p bench --bench sim_throughput` — full measurement;
//! * `... -- --test` (or `--smoke`) — CI smoke mode: one warmup and a
//!   short measurement window, still emitting the JSON. Smoke mode
//!   asserts the snapshot-enabled campaign figure made it into the JSON.

use campaign::{golden, Budget, Campaign, SnapshotPolicy};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::Target;
use injector::{Avf, Injector};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use workloads::{build, Benchmark, Scale, Workload};

struct Case {
    name: &'static str,
    workload: Workload,
    device: DeviceModel,
}

struct Measurement {
    name: &'static str,
    dyn_instrs: u64,
    /// Best (minimum) seconds per golden run over the sample set.
    best_secs: f64,
    mean_secs: f64,
    samples: usize,
}

impl Measurement {
    fn instrs_per_sec(&self) -> f64 {
        self.dyn_instrs as f64 / self.best_secs
    }
}

fn measure(case: &Case, budget_secs: f64, min_samples: usize) -> Measurement {
    // One untimed run warms caches and yields the dynamic-instruction
    // count the rates are computed from.
    let golden = case.workload.execute_golden(&case.device);
    assert!(golden.status.completed(), "{}: golden run failed", case.name);
    let dyn_instrs = golden.counts.total;

    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < min_samples || start.elapsed().as_secs_f64() < budget_secs {
        let t = Instant::now();
        black_box(case.workload.execute_golden(&case.device));
        samples.push(t.elapsed().as_secs_f64());
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Measurement {
        name: case.name,
        dyn_instrs,
        best_secs: best,
        mean_secs: mean,
        samples: samples.len(),
    }
}

/// End-to-end campaign rate: full injector trials (plan sampling, faulty
/// run, golden compare, tallying) per second of wall clock — the number a
/// campaign's ETA is made of, complementing the per-instruction rate.
struct CampaignMeasurement {
    name: &'static str,
    trials: u64,
    best_secs: f64,
    mean_secs: f64,
    samples: usize,
}

impl CampaignMeasurement {
    fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.best_secs
    }
}

fn measure_campaign(
    name: &'static str,
    workload: &Workload,
    device: &DeviceModel,
    trials: u32,
    snapshots: SnapshotPolicy,
    budget_secs: f64,
    min_samples: usize,
) -> CampaignMeasurement {
    let run_once = || {
        Campaign::new(Avf::new(Injector::NvBitFi), workload, device)
            .budget(Budget::fixed(trials).seed(2021).snapshots(snapshots))
            .run()
            .expect("throughput campaign failed")
    };
    black_box(run_once()); // warm the golden cache
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < min_samples || start.elapsed().as_secs_f64() < budget_secs {
        let t = Instant::now();
        black_box(run_once());
        samples.push(t.elapsed().as_secs_f64());
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    CampaignMeasurement {
        name,
        trials: trials as u64,
        best_secs: best,
        mean_secs: mean,
        samples: samples.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (budget_secs, min_samples) = if smoke { (0.2, 2) } else { (2.0, 10) };

    let cases = [
        Case {
            name: "mxm_f32_small",
            workload: build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::named("k40c-sim"),
        },
        Case {
            name: "hotspot_f32_small",
            workload: build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::named("k40c-sim"),
        },
        Case {
            name: "gemm_mma_h16_small",
            workload: build(Benchmark::GemmMma, Precision::Half, CodeGen::Cuda10, Scale::Small),
            device: DeviceModel::named("v100-sim"),
        },
    ];

    let results: Vec<Measurement> =
        cases.iter().map(|c| measure(c, budget_secs, min_samples)).collect();

    for m in &results {
        println!(
            "sim_throughput/{:<20} {:>8.2} M dyn-instrs/s  (best {:.3} ms, mean {:.3} ms, {} dyn instrs, {} samples)",
            m.name,
            m.instrs_per_sec() / 1e6,
            m.best_secs * 1e3,
            m.mean_secs * 1e3,
            m.dyn_instrs,
            m.samples,
        );
    }

    // Campaign trials/sec, snapshots on vs off: the same workload, seed
    // and trial count, differing only in the fast-forward policy — so the
    // ratio is the speedup the snapshot layer buys.
    let campaign_trials = if smoke { 50 } else { 200 };
    let mxm_tiny = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let kepler = DeviceModel::named("k40c-sim");
    let campaign_results = [
        measure_campaign(
            "avf_nvbitfi_mxm_f32_tiny",
            &mxm_tiny,
            &kepler,
            campaign_trials,
            SnapshotPolicy::Auto,
            budget_secs,
            min_samples,
        ),
        measure_campaign(
            "avf_nvbitfi_mxm_f32_tiny_nosnap",
            &mxm_tiny,
            &kepler,
            campaign_trials,
            SnapshotPolicy::Off,
            budget_secs,
            min_samples,
        ),
    ];
    for m in &campaign_results {
        println!(
            "sim_throughput/{:<32} {:>8.1} trials/s  (best {:.3} ms, mean {:.3} ms, {} trials, {} samples)",
            m.name,
            m.trials_per_sec(),
            m.best_secs * 1e3,
            m.mean_secs * 1e3,
            m.trials,
            m.samples,
        );
    }
    let snap_rate = campaign_results[0].trials_per_sec();
    let nosnap_rate = campaign_results[1].trials_per_sec();
    let speedup = snap_rate / nosnap_rate;
    println!("sim_throughput/snapshot_fastforward_speedup {speedup:>8.2}x (snapshots {snap_rate:.1} vs from-zero {nosnap_rate:.1} trials/s)");

    let path = std::env::var("BENCH_JSON_PATH")
        .unwrap_or_else(|_| "BENCH_sim_throughput.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"unit\": \"dyn_instrs_per_sec\",\n  \"cases\": [\n");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"dyn_instrs\": {}, \"best_secs\": {:.9}, \"mean_secs\": {:.9}, \"instrs_per_sec\": {:.1}}}{}",
            m.name,
            m.dyn_instrs,
            m.best_secs,
            m.mean_secs,
            m.instrs_per_sec(),
            sep
        );
    }
    json.push_str("  ],\n  \"campaigns\": [\n");
    for (i, m) in campaign_results.iter().enumerate() {
        let sep = if i + 1 < campaign_results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"trials\": {}, \"best_secs\": {:.9}, \"mean_secs\": {:.9}, \"trials_per_sec\": {:.1}}}{}",
            m.name,
            m.trials,
            m.best_secs,
            m.mean_secs,
            m.trials_per_sec(),
            sep
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"snapshots\": {{\"case\": \"avf_nvbitfi_mxm_f32_tiny\", \"trials_per_sec_snapshots\": {snap_rate:.1}, \"trials_per_sec_nosnap\": {nosnap_rate:.1}, \"speedup\": {speedup:.3}}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("sim_throughput: could not write {path}: {e}");
    } else {
        println!("sim_throughput: wrote {path}");
    }

    // Snapshot-cache size report for the CI artifact: which golden runs
    // are cached and how much memory their snapshot sets hold.
    let cache_path = std::env::var("BENCH_SNAPSHOT_CACHE_PATH")
        .unwrap_or_else(|_| "BENCH_sim_throughput_snapshot_cache.txt".to_string());
    let report = golden::cache_report();
    if let Err(e) = std::fs::write(&cache_path, &report) {
        eprintln!("sim_throughput: could not write {cache_path}: {e}");
    } else {
        println!("sim_throughput: wrote {cache_path}");
    }

    if smoke {
        // CI contract: the snapshot-enabled campaign figure must be
        // present (and sane) in the emitted JSON.
        let written = std::fs::read_to_string(&path).expect("smoke: read back BENCH JSON");
        assert!(
            written.contains("\"trials_per_sec_snapshots\""),
            "smoke: snapshot-enabled trials/sec missing from {path}"
        );
        assert!(
            snap_rate > 0.0 && snap_rate.is_finite(),
            "smoke: snapshot-enabled trials/sec not positive: {snap_rate}"
        );
        assert!(
            report.contains("stride="),
            "smoke: snapshot cache report has no cached entries:\n{report}"
        );
    }
}
