//! Cost of the engine's trace hook points.
//!
//! Three configurations over the same golden workload:
//!
//! * `no_sink` — `run` (no sink parameter at all), the pre-hook baseline;
//! * `none_sink` — `run_with_sink(.., None)`: the disabled path, one
//!   `Option` check per hook point. Must be indistinguishable from
//!   `no_sink` (the "zero-cost when disabled" claim).
//! * `counting_sink` — the cheapest enabled sink, measuring the floor
//!   cost of actually constructing and delivering every event.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use gpu_sim::{run_with_sink, RunOptions, Target};
use obs::{CountingSink, TraceSink};
use workloads::{build, Benchmark, Scale};

fn overhead(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small);
    let opts = RunOptions::default();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(30);

    group.bench_function("no_sink", |b| b.iter(|| w.execute_golden(&device)));
    group.bench_function("none_sink", |b| {
        b.iter(|| run_with_sink(&device, w.kernel(), w.launch(), w.fresh_memory(), &opts, None))
    });
    group.bench_function("counting_sink", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            let out = run_with_sink(
                &device,
                w.kernel(),
                w.launch(),
                w.fresh_memory(),
                &opts,
                Some(&mut sink as &mut dyn TraceSink),
            );
            (out, sink.events)
        })
    });
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
