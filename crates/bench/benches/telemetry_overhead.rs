//! Cost of full campaign telemetry (histograms + spans + progress) at
//! default sampling, against the same campaign running bare.
//!
//! The telemetry pipeline's contract is "watchable for free": histograms
//! are striped atomics, spans record only at shard/trial granularity plus
//! one engine-phase-traced trial in [`obs::span::DEFAULT_PHASE_EVERY`],
//! and the disabled hooks inside the engine are a handful of `Option`
//! checks. This bench holds the pipeline to that contract: end-to-end
//! campaign throughput with telemetry on must stay within a few percent
//! of the bare run. The assertion threshold is 3% on the best-of-samples
//! rate; CI runs the `--smoke` mode on every push.
//!
//! Self-reporting like the other benches: writes
//! `BENCH_telemetry_overhead.json` (override with `BENCH_JSON_PATH`).

use campaign::{Budget, Campaign};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use injector::{Avf, Injector};
use obs::{CampaignObserver, MetricsRegistry, SpanBus};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use workloads::{build, Benchmark, Scale, Workload};

const TRIALS: u32 = 200;

/// One campaign run in the given configuration; returns its wall time.
fn run_once(workload: &Workload, device: &DeviceModel, telemetry: bool) -> f64 {
    let metrics = MetricsRegistry::new();
    let spans = SpanBus::new();
    let t = Instant::now();
    let campaign = Campaign::new(Avf::new(Injector::NvBitFi), workload, device)
        .budget(Budget::fixed(TRIALS).seed(2021));
    let campaign = if telemetry {
        campaign.observer(CampaignObserver::with_metrics(&metrics).with_spans(&spans))
    } else {
        campaign
    };
    let result = campaign.run().expect("overhead campaign failed");
    let secs = t.elapsed().as_secs_f64();
    black_box((result, metrics.snapshot().counters.len(), spans.len()));
    secs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    // Overhead is a ratio of two noisy minima. The samples are
    // interleaved (bare, telemetry, bare, ...) so clock drift and
    // machine load hit both configurations equally instead of biasing
    // whichever ran second.
    let (budget_secs, min_pairs) = if smoke { (1.5, 6) } else { (8.0, 30) };

    let device = DeviceModel::named("k40c-sim");
    let workload = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);

    // Warm the golden cache through both paths before timing.
    run_once(&workload, &device, false);
    run_once(&workload, &device, true);

    let mut bare = f64::INFINITY;
    let mut telemetry = f64::INFINITY;
    let mut ratios = Vec::new();
    let start = Instant::now();
    while ratios.len() < min_pairs || start.elapsed().as_secs_f64() < budget_secs {
        let b = run_once(&workload, &device, false);
        let t = run_once(&workload, &device, true);
        bare = bare.min(b);
        telemetry = telemetry.min(t);
        ratios.push(t / b);
    }
    // Median of the paired ratios: each pair ran back-to-back, so a load
    // spike inflates both sides of its ratio roughly equally, and the
    // median discards the pairs where it did not.
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let overhead = ratios[ratios.len() / 2] - 1.0;

    println!(
        "telemetry_overhead/bare      {:>8.1} trials/s  (best {:.3} ms)",
        TRIALS as f64 / bare,
        bare * 1e3
    );
    println!(
        "telemetry_overhead/telemetry {:>8.1} trials/s  (best {:.3} ms)",
        TRIALS as f64 / telemetry,
        telemetry * 1e3
    );
    println!(
        "telemetry_overhead/overhead  {:>8.2}%  (median of {} paired ratios)",
        overhead * 100.0,
        ratios.len()
    );

    let path = std::env::var("BENCH_JSON_PATH")
        .unwrap_or_else(|_| "BENCH_telemetry_overhead.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"telemetry_overhead\",\n");
    let _ = writeln!(json, "  \"trials\": {TRIALS},");
    let _ = writeln!(json, "  \"bare_best_secs\": {bare:.9},");
    let _ = writeln!(json, "  \"telemetry_best_secs\": {telemetry:.9},");
    let _ = writeln!(json, "  \"overhead\": {overhead:.6}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("telemetry_overhead: could not write {path}: {e}");
    } else {
        println!("telemetry_overhead: wrote {path}");
    }

    assert!(
        overhead < 0.03,
        "telemetry overhead {:.2}% exceeds the 3% budget (bare {:.3} ms, telemetry {:.3} ms)",
        overhead * 100.0,
        bare * 1e3,
        telemetry * 1e3
    );
    println!("telemetry_overhead: within the 3% budget");
}
