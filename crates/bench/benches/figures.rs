//! Criterion benchmarks wrapping each table/figure regeneration at
//! micro campaign sizes — one bench target per experiment, as the
//! per-experiment index in DESIGN.md requires. (The `repro` binary runs
//! the full-size versions; these measure the harness cost itself.)

use beam::Beam;
use campaign::{Budget, Campaign};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_arch::{CodeGen, DeviceModel, Precision};
use injector::{Avf, Injector};
use prediction::{
    characterize_units, memory_footprint, predict, CharacterizeConfig, PredictOptions,
};
use profiler::profile;
use workloads::{build, Benchmark, Scale};

fn table1_profiles(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Gemm, Precision::Single, CodeGen::Cuda10, Scale::Small);
    c.bench_function("table1_profile_one_code", |b| b.iter(|| profile(&w, &device)));
}

fn fig1_mix(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Lava, Precision::Single, CodeGen::Cuda7, Scale::Small);
    c.bench_function("fig1_mix_one_code", |b| {
        b.iter(|| {
            let p = profile(&w, &device);
            p.mix_fractions
        })
    });
}

fn fig3_microbench(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let mb = microbench::arith(gpu_arch::FunctionalUnit::Fadd);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("beam_one_microbench_500_runs", |b| {
        b.iter(|| {
            Campaign::new(Beam::auto(true), &mb, &device)
                .budget(Budget::fixed(500).seed(1))
                .run()
                .unwrap()
        })
    });
    group.finish();
}

fn fig4_avf(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("avf_campaign_100_injections", |b| {
        b.iter(|| {
            Campaign::new(Avf::new(Injector::Sassifi), &w, &device)
                .budget(Budget::fixed(100).seed(1))
                .run()
                .unwrap()
        })
    });
    group.finish();
}

fn fig5_beam(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("beam_campaign_500_runs", |b| {
        b.iter(|| {
            Campaign::new(Beam::auto(false), &w, &device)
                .budget(Budget::fixed(500).seed(1))
                .run()
                .unwrap()
        })
    });
    group.finish();
}

fn fig6_prediction(c: &mut Criterion) {
    // The prediction step itself (unit characterization amortized out).
    let device = DeviceModel::named("k40c-sim");
    let units = characterize_units(
        &device,
        &microbench::suite(&device),
        &CharacterizeConfig {
            beam: Budget::fixed(300).seed(1),
            injection: Budget::fixed(40).seed(1),
        },
    );
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let prof = profile(&w, &device);
    let avf = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(60).seed(1))
        .run()
        .unwrap();
    let feet = memory_footprint(&w, &device, &prof);
    c.bench_function("fig6_predict_one_code", |b| {
        b.iter(|| predict(&prof, &avf, &units, &feet, &PredictOptions::default()))
    });
}

fn ablate_phi(c: &mut Criterion) {
    // The phi ablation: predictions with and without Equation 4's factor
    // (accuracy consequences are reported by `repro ablate`; this measures
    // that toggling phi is free).
    let device = DeviceModel::named("k40c-sim");
    let units = characterize_units(
        &device,
        &microbench::suite(&device),
        &CharacterizeConfig {
            beam: Budget::fixed(300).seed(2),
            injection: Budget::fixed(40).seed(2),
        },
    );
    let w = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
    let prof = profile(&w, &device);
    let avf = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(60).seed(2))
        .run()
        .unwrap();
    let feet = memory_footprint(&w, &device, &prof);
    c.bench_function("ablate_phi_toggle", |b| {
        b.iter(|| {
            let a =
                predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
            let b2 =
                predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: false });
            (a.sdc_fit, b2.sdc_fit)
        })
    });
}

criterion_group!(
    benches,
    table1_profiles,
    fig1_mix,
    fig3_microbench,
    fig4_avf,
    fig5_beam,
    fig6_prediction,
    ablate_phi
);
criterion_main!(benches);
