//! Criterion benchmarks of the simulation substrate itself: golden-run
//! throughput for representative kernels and the cost of one
//! injection/beam run. These are the unit costs every figure campaign
//! pays thousands of times.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_arch::{CodeGen, DeviceModel, FunctionalUnit, Precision};
use gpu_sim::{BitFlip, FaultPlan, RunOptions, SiteClass, Target};
use workloads::{build, Benchmark, Scale};

fn golden_runs(c: &mut Criterion) {
    let kepler = DeviceModel::named("k40c-sim");
    let volta = DeviceModel::named("v100-sim");
    let mut group = c.benchmark_group("golden");
    group.sample_size(20);

    let cases = [
        ("mxm_f32", build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small)),
        (
            "hotspot_f32",
            build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, Scale::Small),
        ),
        ("mergesort", build(Benchmark::Mergesort, Precision::Int32, CodeGen::Cuda10, Scale::Small)),
        ("yolov2_f32", build(Benchmark::Yolov2, Precision::Single, CodeGen::Cuda10, Scale::Small)),
    ];
    for (name, w) in &cases {
        group.bench_function(name, |b| b.iter(|| w.execute_golden(&kepler)));
    }
    let mma = build(Benchmark::GemmMma, Precision::Half, CodeGen::Cuda10, Scale::Small);
    group.bench_function("gemm_mma_h16", |b| b.iter(|| mma.execute_golden(&volta)));
    group.finish();
}

fn fault_runs(c: &mut Criterion) {
    let device = DeviceModel::named("k40c-sim");
    let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small);
    let golden = w.execute_golden(&device);
    let watchdog = golden.counts.total * 4;

    let mut group = c.benchmark_group("fault_run");
    group.sample_size(20);
    group.bench_function("instruction_output", |b| {
        b.iter(|| {
            let opts = RunOptions::trial(FaultPlan::InstructionOutput {
                nth: 5000,
                site: SiteClass::Unit(FunctionalUnit::Ffma),
                flip: BitFlip::single(12),
            })
            .ecc(false)
            .watchdog(watchdog);
            w.execute(&device, &opts)
        })
    });
    group.bench_function("register_bit", |b| {
        b.iter(|| {
            let opts = RunOptions::trial(FaultPlan::RegisterBit {
                block: 0,
                thread: 7,
                reg: 16,
                flip: BitFlip::single(3),
                at: 10_000,
            })
            .ecc(false)
            .watchdog(watchdog);
            w.execute(&device, &opts)
        })
    });
    group.finish();
}

criterion_group!(benches, golden_runs, fault_runs);
criterion_main!(benches);
