//! Architecture-level fault injection: models of **SASSIFI** and
//! **NVBitFI** (Section III-D).
//!
//! Both frameworks instrument SASS and corrupt *architecturally visible*
//! state — instruction outputs, predicate registers, general-purpose
//! registers, addresses. Neither can reach schedulers, fetch logic, or
//! memory controllers, which is precisely why the paper finds DUE rates
//! underestimated by orders of magnitude.
//!
//! The models reproduce the documented capability differences:
//!
//! * **SASSIFI** targets Kepler/Maxwell, supports injections into the
//!   outputs of FP/INT/load instruction groups, predicate registers,
//!   general-purpose registers, and store addresses — but cannot
//!   instrument pre-compiled proprietary-library kernels (cuBLAS GEMM,
//!   cuDNN-backed YOLO) at all.
//! * **NVBitFI** targets Kepler through Turing and *can* instrument
//!   proprietary libraries, but only injects into instructions that write
//!   general-purpose registers and — as of the paper's submission —
//!   **not into half-precision instructions**, the limitation behind the
//!   HHotspot 27x overestimation (Section VII-A).
//!
//! An injection campaign draws `n` single-bit faults uniformly over the
//! target's dynamic injectable-site population, runs each to completion,
//! and classifies the outcome as SDC / DUE / Masked, yielding the AVF
//! with a Wilson 95% CI.

use gpu_arch::{Architecture, DeviceModel, FunctionalUnit};
use gpu_sim::{BitFlip, DueKind, ExecStatus, Executed, FaultPlan, RunOptions, SiteClass, Target};
use obs::CampaignObserver;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use stats::{binomial_ci95, Outcome, OutcomeCounts};
use std::fmt;

/// The two fault-injection frameworks compared by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Injector {
    /// SASSIFI (ISPASS'17): CUDA 7-era, Kepler/Maxwell.
    Sassifi,
    /// NVBitFI (DSN'20): CUDA 10-era, Kepler..Turing.
    NvBitFi,
}

impl fmt::Display for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Injector::Sassifi => write!(f, "SASSIFI"),
            Injector::NvBitFi => write!(f, "NVBitFI"),
        }
    }
}

/// Why an injector refuses a target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unsupported {
    /// The architecture is outside the injector's support matrix.
    Architecture(Architecture),
    /// SASSIFI cannot instrument proprietary-library kernels.
    ProprietaryKernel,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::Architecture(a) => write!(f, "architecture {a:?} not supported"),
            Unsupported::ProprietaryKernel => {
                write!(f, "cannot instrument proprietary-library kernels")
            }
        }
    }
}

impl Injector {
    /// Can this injector instrument `target` on `device`?
    pub fn supports<T: Target + ?Sized>(
        self,
        target: &T,
        device: &DeviceModel,
    ) -> Result<(), Unsupported> {
        match self {
            Injector::Sassifi => {
                if device.arch != Architecture::Kepler {
                    return Err(Unsupported::Architecture(device.arch));
                }
                if target.proprietary() {
                    return Err(Unsupported::ProprietaryKernel);
                }
                Ok(())
            }
            Injector::NvBitFi => Ok(()),
        }
    }
}

/// An injection mode: which fault model one run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Flip one bit of the output value of an instruction in a site class.
    Output(SiteClass),
    /// Replace the output with a random value (SASSIFI's RV model).
    OutputRandom(SiteClass),
    /// Replace the output with zero (SASSIFI's ZV model).
    OutputZero(SiteClass),
    /// Invert a predicate produced by a `SETP`.
    Predicate,
    /// Flip a bit of a live general-purpose register (SASSIFI's GPR/RF
    /// mode).
    Register,
    /// Corrupt a memory instruction's effective address (SASSIFI's
    /// store-address group, extended to loads as in its LD group).
    Address,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of injection runs.
    pub injections: u32,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        // The paper uses >= 4,000 per code for NVBitFI; the default here
        // is sized for a laptop-scale simulator while keeping the Wilson
        // 95% CI under ~3%.
        CampaignConfig { injections: 1000, seed: 0x5EED }
    }
}

/// The result of an AVF campaign (one bar of Figure 4).
#[derive(Clone, Debug)]
pub struct AvfResult {
    /// Target name.
    pub target: String,
    /// Which injector ran.
    pub injector: Injector,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// SDC AVF with 95% CI.
    pub sdc: (f64, f64, f64),
    /// DUE AVF with 95% CI.
    pub due: (f64, f64, f64),
    /// Masked fraction.
    pub masked: f64,
}

impl AvfResult {
    fn from_counts(target: String, injector: Injector, counts: OutcomeCounts) -> Self {
        let total = counts.total();
        let (slo, shi) = binomial_ci95(counts.sdc, total);
        let (dlo, dhi) = binomial_ci95(counts.due, total);
        AvfResult {
            target,
            injector,
            counts,
            sdc: (counts.sdc_fraction(), slo, shi),
            due: (counts.due_fraction(), dlo, dhi),
            masked: counts.masked_fraction(),
        }
    }

    /// SDC AVF point estimate.
    pub fn sdc_avf(&self) -> f64 {
        self.sdc.0
    }

    /// SDC AVF with a resolution floor of half an event: a campaign that
    /// observed zero SDCs can only bound the AVF, not prove it zero
    /// (relevant for the CNNs, whose classification tolerance masks
    /// almost everything).
    pub fn sdc_avf_floored(&self) -> f64 {
        self.sdc_avf().max(0.5 / self.counts.total().max(1) as f64)
    }

    /// DUE AVF with the same resolution floor.
    pub fn due_avf_floored(&self) -> f64 {
        self.due_avf().max(0.5 / self.counts.total().max(1) as f64)
    }

    /// DUE AVF point estimate.
    pub fn due_avf(&self) -> f64 {
        self.due.0
    }
}

/// The modes an injector cycles through, given the target's dynamic site
/// populations (modes with an empty population are dropped).
fn available_modes(
    injector: Injector,
    sites: &gpu_sim::SiteCounts,
    unit_counts: &[u64; FunctionalUnit::COUNT],
) -> Vec<Mode> {
    let unit = |u: FunctionalUnit| unit_counts[u.index()];
    match injector {
        Injector::Sassifi => {
            // One mode per instruction group ("1,000 for each instruction
            // kind"), plus predicate, GPR and address modes.
            let mut modes = Vec::new();
            let float: u64 = [FunctionalUnit::Fadd, FunctionalUnit::Fmul, FunctionalUnit::Ffma]
                .iter()
                .map(|&u| unit(u))
                .sum();
            let double: u64 = [FunctionalUnit::Dadd, FunctionalUnit::Dmul, FunctionalUnit::Dfma]
                .iter()
                .map(|&u| unit(u))
                .sum();
            let int: u64 = [FunctionalUnit::Iadd, FunctionalUnit::Imul, FunctionalUnit::Imad]
                .iter()
                .map(|&u| unit(u))
                .sum();
            if float + double > 0 {
                modes.push(Mode::Output(SiteClass::FloatArith));
                modes.push(Mode::OutputRandom(SiteClass::FloatArith));
                modes.push(Mode::OutputZero(SiteClass::FloatArith));
            }
            if int > 0 {
                modes.push(Mode::Output(SiteClass::IntArith));
                modes.push(Mode::OutputRandom(SiteClass::IntArith));
            }
            if sites.loads > 0 {
                modes.push(Mode::Output(SiteClass::Load));
            }
            if sites.setp > 0 {
                modes.push(Mode::Predicate);
            }
            modes.push(Mode::Register);
            if sites.mem_ops > 0 {
                modes.push(Mode::Address);
            }
            modes
        }
        Injector::NvBitFi => {
            // Injections into instructions that write GPRs — excluding
            // half-precision ops (documented limitation).
            if sites.gpr_writers_no_half > 0 {
                vec![Mode::Output(SiteClass::GprWriterNoHalf)]
            } else {
                Vec::new()
            }
        }
    }
}

/// Population size of a site class (for uniform `nth` sampling).
fn class_population(
    class: SiteClass,
    sites: &gpu_sim::SiteCounts,
    unit_counts: &[u64; FunctionalUnit::COUNT],
) -> u64 {
    use FunctionalUnit::*;
    let unit = |u: FunctionalUnit| unit_counts[u.index()];
    match class {
        SiteClass::GprWriter => sites.gpr_writers,
        SiteClass::GprWriterNoHalf => sites.gpr_writers_no_half,
        SiteClass::FloatArith => {
            [Fadd, Fmul, Ffma, Dadd, Dmul, Dfma].iter().map(|&u| unit(u)).sum()
        }
        SiteClass::HalfArith => [Hadd, Hmul, Hfma].iter().map(|&u| unit(u)).sum(),
        SiteClass::IntArith => [Iadd, Imul, Imad].iter().map(|&u| unit(u)).sum(),
        SiteClass::Load => sites.loads,
        SiteClass::Unit(u) => unit(u),
    }
}

/// Bit-width hint for sampling a flip position in a class.
fn class_bits(class: SiteClass) -> u32 {
    match class {
        SiteClass::HalfArith => 16,
        SiteClass::Unit(u) => match u {
            FunctionalUnit::Hadd
            | FunctionalUnit::Hmul
            | FunctionalUnit::Hfma
            | FunctionalUnit::Hmma => 16,
            FunctionalUnit::Dadd | FunctionalUnit::Dmul | FunctionalUnit::Dfma => 64,
            _ => 32,
        },
        // NVBitFI and SASSIFI flip bits of 32-bit architectural registers;
        // 64-bit values occupy two registers and each injection touches
        // one of them — the low word here (documented simplification).
        _ => 32,
    }
}

/// Draw one fault plan for `mode`.
fn sample_plan<R: Rng>(
    rng: &mut R,
    mode: Mode,
    golden: &Executed,
    target_launch: &gpu_arch::LaunchConfig,
    regs_per_thread: u16,
) -> Option<FaultPlan> {
    let sites = &golden.counts.sites;
    match mode {
        Mode::Output(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            let nth = rng.gen_range(0..pop);
            let bit = rng.gen_range(0..class_bits(class));
            Some(FaultPlan::InstructionOutput { nth, site: class, flip: BitFlip::single(bit) })
        }
        Mode::OutputRandom(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            Some(FaultPlan::InstructionOutputSet {
                nth: rng.gen_range(0..pop),
                site: class,
                value: rng.gen::<u64>(),
            })
        }
        Mode::OutputZero(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            Some(FaultPlan::InstructionOutputSet {
                nth: rng.gen_range(0..pop),
                site: class,
                value: 0,
            })
        }
        Mode::Predicate => {
            if sites.setp == 0 {
                return None;
            }
            Some(FaultPlan::PredicateOutput { nth: rng.gen_range(0..sites.setp) })
        }
        Mode::Register => {
            let at = rng.gen_range(0..golden.counts.total.max(1));
            let block = rng.gen_range(0..target_launch.grid.count());
            let thread = rng.gen_range(0..target_launch.block.count());
            let reg = rng.gen_range(0..regs_per_thread.max(1)) as u8;
            Some(FaultPlan::RegisterBit {
                block,
                thread,
                reg,
                flip: BitFlip::single(rng.gen_range(0..32)),
                at,
            })
        }
        Mode::Address => {
            if sites.mem_ops == 0 {
                return None;
            }
            Some(FaultPlan::MemAddress {
                nth: rng.gen_range(0..sites.mem_ops),
                flip: BitFlip::single(rng.gen_range(0..32)),
            })
        }
    }
}

/// Classify one faulty run against the golden run.
pub fn classify<T: Target + ?Sized>(target: &T, golden: &Executed, faulty: &Executed) -> Outcome {
    match faulty.status {
        ExecStatus::Due(_) => Outcome::Due,
        ExecStatus::Completed => {
            if target.output_matches(golden, faulty) {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Run a full AVF campaign of `config.injections` single-bit faults.
///
/// Injection runs execute with ECC disabled in the simulator: an
/// instrumentation-based injector writes state architecturally, so ECC
/// never sees a raw bit error (unlike particle strikes).
///
/// # Errors
/// Returns [`Unsupported`] if the injector cannot instrument the target.
pub fn measure_avf<T: Target + Sync + ?Sized>(
    injector: Injector,
    target: &T,
    device: &DeviceModel,
    config: &CampaignConfig,
) -> Result<AvfResult, Unsupported> {
    measure_avf_observed(injector, target, device, config, CampaignObserver::none())
}

/// [`measure_avf`] with observation hooks: per-trial outcome tallies (by
/// site class and DUE kind) into the observer's metrics registry and a
/// progress tick per completed trial.
pub fn measure_avf_observed<T: Target + Sync + ?Sized>(
    injector: Injector,
    target: &T,
    device: &DeviceModel,
    config: &CampaignConfig,
    observer: CampaignObserver<'_>,
) -> Result<AvfResult, Unsupported> {
    injector.supports(target, device)?;

    let golden_opts = RunOptions { ecc: false, ..RunOptions::default() };
    let golden = target.execute(device, &golden_opts);
    assert!(
        golden.status.completed(),
        "golden run of {} failed: {:?}",
        target.name(),
        golden.status
    );
    let watchdog = golden.counts.total * 4 + 100_000;
    let modes = available_modes(injector, &golden.counts.sites, &golden.counts.per_unit);
    assert!(!modes.is_empty(), "no injectable sites in {}", target.name());

    // Plans are drawn sequentially (deterministic), executions fan out
    // over the Rayon pool (each run is independent).
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ hash_name(target.name()));
    let mut plans = Vec::with_capacity(config.injections as usize);
    let mut presampled_masked = 0u64;
    for i in 0..config.injections {
        // SASSIFI splits the budget evenly across instruction kinds
        // ("1,000 for each instruction kind"); cycling achieves the same.
        let mode = modes[(i as usize) % modes.len()];
        match sample_plan(&mut rng, mode, &golden, target.launch(), target.kernel().regs_per_thread)
        {
            Some(plan) => plans.push(plan),
            None => presampled_masked += 1,
        }
    }
    let mut counts = run_plans_observed(target, device, &golden, &plans, watchdog, observer);
    counts.masked += presampled_masked;
    if let (Some(m), presampled @ 1..) = (observer.metrics, presampled_masked) {
        m.counter("trials").add(presampled);
        m.counter("outcome.masked").add(presampled);
    }
    Ok(AvfResult::from_counts(target.name().to_string(), injector, counts))
}

/// Measure the masking AVF of a micro-benchmark for the Figure 3 / FIT
/// correction of Section V-A: injections restricted to the unit the
/// micro-benchmark exercises.
pub fn measure_unit_avf<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    unit: FunctionalUnit,
    config: &CampaignConfig,
) -> AvfResult {
    measure_class_avf(target, device, SiteClass::Unit(unit), config)
}

/// Measure an AVF with injections drawn from an arbitrary site class.
/// Used for capability ablations (e.g. "what if NVBitFI could inject into
/// half-precision instructions?" — Section VII-A's HHotspot discussion).
pub fn measure_class_avf<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    class: SiteClass,
    config: &CampaignConfig,
) -> AvfResult {
    let golden_opts = RunOptions { ecc: false, ..RunOptions::default() };
    let golden = target.execute(device, &golden_opts);
    assert!(golden.status.completed());
    let watchdog = golden.counts.total * 4 + 100_000;
    let pop = class_population(class, &golden.counts.sites, &golden.counts.per_unit);
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ hash_name(target.name()));
    let mut plans = Vec::with_capacity(config.injections as usize);
    let mut presampled_masked = 0u64;
    for _ in 0..config.injections {
        if pop == 0 {
            presampled_masked += 1;
            continue;
        }
        plans.push(FaultPlan::InstructionOutput {
            nth: rng.gen_range(0..pop),
            site: class,
            flip: BitFlip::single(rng.gen_range(0..class_bits(class))),
        });
    }
    let mut counts = run_plans(target, device, &golden, &plans, watchdog);
    counts.masked += presampled_masked;
    AvfResult::from_counts(target.name().to_string(), Injector::NvBitFi, counts)
}

/// Execute a batch of fault plans (in parallel when the target is Sync)
/// and tally the outcomes.
fn run_plans<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    golden: &Executed,
    plans: &[FaultPlan],
    watchdog: u64,
) -> OutcomeCounts {
    run_plans_observed(target, device, golden, plans, watchdog, CampaignObserver::none())
}

fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Sdc => "sdc",
        Outcome::Due => "due",
        Outcome::Masked => "masked",
    }
}

/// [`run_plans`] with observation hooks. Progress ticks from inside the
/// parallel loop; metrics are tallied sequentially afterwards so the
/// registry's lock never sits on the hot path.
fn run_plans_observed<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    golden: &Executed,
    plans: &[FaultPlan],
    watchdog: u64,
    observer: CampaignObserver<'_>,
) -> OutcomeCounts {
    use rayon::prelude::*;
    let progress = observer.progress;
    let results: Vec<(Outcome, Option<DueKind>)> = plans
        .par_iter()
        .map(|&plan| {
            let opts = RunOptions {
                ecc: false,
                fault: plan,
                watchdog_limit: watchdog,
                ..RunOptions::default()
            };
            let faulty = target.execute(device, &opts);
            let due_kind = match faulty.status {
                ExecStatus::Due(kind) => Some(kind),
                ExecStatus::Completed => None,
            };
            let outcome = classify(target, golden, &faulty);
            if let Some(p) = progress {
                p.inc();
            }
            (outcome, due_kind)
        })
        .collect();
    if let Some(m) = observer.metrics {
        m.counter("trials").add(results.len() as u64);
        for (&(outcome, due_kind), plan) in results.iter().zip(plans) {
            m.counter(&format!("outcome.{}", outcome_name(outcome))).inc();
            m.counter(&format!("site.{}.{}", plan.site_label(), outcome_name(outcome))).inc();
            if let Some(kind) = due_kind {
                m.counter(&format!("due.{}", kind.name())).inc();
            }
        }
        if let Some(p) = progress {
            m.gauge("trials_per_sec").set(p.rate());
        }
    }
    results.into_iter().map(|(o, _)| o).collect()
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::{CodeGen, Precision};
    use workloads::{build, Benchmark, Scale};

    fn cfg(n: u32) -> CampaignConfig {
        CampaignConfig { injections: n, seed: 42 }
    }

    #[test]
    fn sassifi_rejects_volta_and_proprietary() {
        let volta = DeviceModel::v100_sim();
        let kepler = DeviceModel::k40c_sim();
        let mxm = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let gemm = build(Benchmark::Gemm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        assert_eq!(
            Injector::Sassifi.supports(&mxm, &volta),
            Err(Unsupported::Architecture(Architecture::Volta))
        );
        assert_eq!(Injector::Sassifi.supports(&mxm, &kepler), Ok(()));
        assert_eq!(Injector::Sassifi.supports(&gemm, &kepler), Err(Unsupported::ProprietaryKernel));
        assert_eq!(Injector::NvBitFi.supports(&gemm, &volta), Ok(()));
        assert_eq!(Injector::NvBitFi.supports(&gemm, &kepler), Ok(()));
    }

    #[test]
    fn campaign_is_reproducible() {
        let kepler = DeviceModel::k40c_sim();
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let a = measure_avf(Injector::Sassifi, &w, &kepler, &cfg(60)).unwrap();
        let b = measure_avf(Injector::Sassifi, &w, &kepler, &cfg(60)).unwrap();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn avf_fractions_sum_to_one() {
        let kepler = DeviceModel::k40c_sim();
        let w = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let r = measure_avf(Injector::NvBitFi, &w, &kepler, &cfg(80)).unwrap();
        assert_eq!(r.counts.total(), 80);
        let sum = r.sdc_avf() + r.due_avf() + r.masked;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mxm_campaign_produces_all_outcome_kinds() {
        let kepler = DeviceModel::k40c_sim();
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let r = measure_avf(Injector::Sassifi, &w, &kepler, &cfg(240)).unwrap();
        assert!(r.counts.sdc > 0, "no SDCs: {:?}", r.counts);
        assert!(r.counts.due > 0, "no DUEs: {:?}", r.counts);
        assert!(r.counts.masked > 0, "nothing masked: {:?}", r.counts);
    }

    #[test]
    fn unit_avf_of_integer_chain_is_high() {
        // Section V-A: micro-benchmark AVF is >= 70%, 100% for integer
        // versions (modulo the end-of-chain check masking).
        let kepler = DeviceModel::k40c_sim();
        let mb = microbench::arith(FunctionalUnit::Iadd);
        let r = measure_unit_avf(&mb, &kepler, FunctionalUnit::Iadd, &cfg(100));
        assert!(r.sdc_avf() > 0.9, "IADD AVF {}", r.sdc_avf());
    }

    #[test]
    fn nvbitfi_never_injects_into_half_ops() {
        // On a half-precision workload NVBitFI still runs, but its site
        // population excludes the H* arithmetic.
        let volta = DeviceModel::v100_sim();
        let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
        let g = w.golden(&volta);
        assert!(g.counts.sites.gpr_writers > g.counts.sites.gpr_writers_no_half);
        let r = measure_avf(Injector::NvBitFi, &w, &volta, &cfg(50)).unwrap();
        assert_eq!(r.counts.total(), 50);
    }
}

/// AVF broken down by injection-site class: which *kind* of instruction,
/// once corrupted, drives the code's failure rate. The paper's conclusion
/// ("this data can be used to tune future fault simulation frameworks")
/// calls for exactly this decomposition.
#[derive(Clone, Debug)]
pub struct AvfBreakdown {
    /// Target name.
    pub target: String,
    /// Per-class results (classes with zero population are omitted).
    pub per_class: Vec<(SiteClass, AvfResult)>,
}

/// Measure the SDC/DUE AVF separately per site class.
pub fn measure_avf_breakdown<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    config: &CampaignConfig,
) -> AvfBreakdown {
    let golden_opts = RunOptions { ecc: false, ..RunOptions::default() };
    let golden = target.execute(device, &golden_opts);
    assert!(golden.status.completed());
    let classes =
        [SiteClass::FloatArith, SiteClass::HalfArith, SiteClass::IntArith, SiteClass::Load];
    let mut per_class = Vec::new();
    for class in classes {
        let pop = class_population(class, &golden.counts.sites, &golden.counts.per_unit);
        if pop == 0 {
            continue;
        }
        let r = measure_class_avf(target, device, class, config);
        per_class.push((class, r));
    }
    AvfBreakdown { target: target.name().to_string(), per_class }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use gpu_arch::{CodeGen, Precision};
    use workloads::{build, Benchmark, Scale};

    #[test]
    fn breakdown_covers_the_code_mix() {
        let device = DeviceModel::k40c_sim();
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let b = measure_avf_breakdown(&w, &device, &CampaignConfig { injections: 60, seed: 4 });
        let classes: Vec<SiteClass> = b.per_class.iter().map(|(c, _)| *c).collect();
        assert!(classes.contains(&SiteClass::FloatArith));
        assert!(classes.contains(&SiteClass::IntArith));
        assert!(classes.contains(&SiteClass::Load));
        assert!(!classes.contains(&SiteClass::HalfArith)); // FP32 code
        for (_, r) in &b.per_class {
            assert_eq!(r.counts.total(), 60);
        }
    }

    #[test]
    fn float_faults_hit_harder_than_loop_overhead_in_mxm() {
        // Corrupting the FMA stream of a matrix multiply should produce at
        // least as many SDCs as corrupting the (partially dead) integer
        // address arithmetic.
        let device = DeviceModel::k40c_sim();
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let b = measure_avf_breakdown(&w, &device, &CampaignConfig { injections: 150, seed: 4 });
        let get = |c: SiteClass| {
            b.per_class.iter().find(|(cc, _)| *cc == c).map(|(_, r)| r.sdc_avf()).unwrap()
        };
        assert!(get(SiteClass::FloatArith) > 0.5, "float AVF {}", get(SiteClass::FloatArith));
    }
}
