//! Architecture-level fault injection: models of **SASSIFI** and
//! **NVBitFI** (Section III-D).
//!
//! Both frameworks instrument SASS and corrupt *architecturally visible*
//! state — instruction outputs, predicate registers, general-purpose
//! registers, addresses. Neither can reach schedulers, fetch logic, or
//! memory controllers, which is precisely why the paper finds DUE rates
//! underestimated by orders of magnitude.
//!
//! The models reproduce the documented capability differences:
//!
//! * **SASSIFI** targets Kepler/Maxwell, supports injections into the
//!   outputs of FP/INT/load instruction groups, predicate registers,
//!   general-purpose registers, and store addresses — but cannot
//!   instrument pre-compiled proprietary-library kernels (cuBLAS GEMM,
//!   cuDNN-backed YOLO) at all.
//! * **NVBitFI** targets Kepler through Turing and *can* instrument
//!   proprietary libraries, but only injects into instructions that write
//!   general-purpose registers and — as of the paper's submission —
//!   **not into half-precision instructions**, the limitation behind the
//!   HHotspot 27x overestimation (Section VII-A).
//!
//! Campaigns run on the shared [`campaign`] engine: construct a
//! [`campaign::Campaign`] with an [`Avf`] (or [`ClassAvf`]) kind and a
//! [`campaign::Budget`], e.g.
//!
//! ```ignore
//! let result = Campaign::new(Avf::new(Injector::Sassifi), &target, &device)
//!     .budget(Budget::quick())
//!     .run()?;
//! ```
//!
//! which draws single-bit faults uniformly over the target's dynamic
//! injectable-site population, runs each to completion, classifies the
//! outcome as SDC / DUE / Masked, and yields the AVF with a Wilson 95%
//! CI — stopping early once the CI target is met when the budget is
//! adaptive. (The legacy `measure_avf*` / `CampaignConfig` forwarders,
//! deprecated for several releases, are gone; see the README migration
//! notes.)

use campaign::{Budget, Campaign, CampaignRun, Kind, Sampler, TrialPlan};
use gpu_arch::decode::{FP32_ARITH_UNITS, FP64_ARITH_UNITS, HALF_ARITH_UNITS, INT_ARITH_UNITS};
use gpu_arch::{DeviceModel, FunctionalUnit, LaunchConfig, Op};
use gpu_sim::{
    BitFlip, ExecStatus, Executed, FaultPlan, FetchEffect, MemQueueEffect, Persistence, SiteClass,
    Target,
};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use stats::{binomial_ci95, Outcome, OutcomeCounts};
use std::fmt;
use std::sync::Arc;

/// The two fault-injection frameworks compared by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Injector {
    /// SASSIFI (ISPASS'17): CUDA 7-era, Kepler/Maxwell.
    Sassifi,
    /// NVBitFI (DSN'20): CUDA 10-era, Kepler..Turing.
    NvBitFi,
}

impl fmt::Display for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Injector::Sassifi => write!(f, "SASSIFI"),
            Injector::NvBitFi => write!(f, "NVBitFI"),
        }
    }
}

/// Why an injector refuses a target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unsupported {
    /// The device is outside the injector's support matrix (its spec's
    /// `[exec] sassifi` capability is off).
    Device(String),
    /// SASSIFI cannot instrument proprietary-library kernels.
    ProprietaryKernel,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::Device(name) => {
                write!(f, "device {name} not supported by this injector")
            }
            Unsupported::ProprietaryKernel => {
                write!(f, "cannot instrument proprietary-library kernels")
            }
        }
    }
}

impl Injector {
    /// Can this injector instrument `target` on `device`?
    pub fn supports<T: Target + ?Sized>(
        self,
        target: &T,
        device: &DeviceModel,
    ) -> Result<(), Unsupported> {
        match self {
            Injector::Sassifi => {
                if !device.caps.sassifi {
                    return Err(Unsupported::Device(device.name.clone()));
                }
                if target.proprietary() {
                    return Err(Unsupported::ProprietaryKernel);
                }
                Ok(())
            }
            Injector::NvBitFi => Ok(()),
        }
    }
}

/// An injection mode: which fault model one run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Flip one bit of the output value of an instruction in a site class.
    Output(SiteClass),
    /// Replace the output with a random value (SASSIFI's RV model).
    OutputRandom(SiteClass),
    /// Replace the output with zero (SASSIFI's ZV model).
    OutputZero(SiteClass),
    /// Invert a predicate produced by a `SETP`.
    Predicate,
    /// Flip a bit of a live general-purpose register (SASSIFI's GPR/RF
    /// mode).
    Register,
    /// Corrupt a memory instruction's effective address (SASSIFI's
    /// store-address group, extended to loads as in its LD group).
    Address,
}

/// The result of an AVF campaign (one bar of Figure 4).
#[derive(Clone, Debug)]
pub struct AvfResult {
    /// Target name.
    pub target: String,
    /// Which injector ran.
    pub injector: Injector,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// SDC AVF with 95% CI.
    pub sdc: (f64, f64, f64),
    /// DUE AVF with 95% CI.
    pub due: (f64, f64, f64),
    /// Masked fraction.
    pub masked: f64,
}

impl AvfResult {
    fn from_counts(target: String, injector: Injector, counts: OutcomeCounts) -> Self {
        let total = counts.total();
        let (slo, shi) = binomial_ci95(counts.sdc, total);
        let (dlo, dhi) = binomial_ci95(counts.due, total);
        AvfResult {
            target,
            injector,
            counts,
            sdc: (counts.sdc_fraction(), slo, shi),
            due: (counts.due_fraction(), dlo, dhi),
            masked: counts.masked_fraction(),
        }
    }

    /// SDC AVF point estimate.
    pub fn sdc_avf(&self) -> f64 {
        self.sdc.0
    }

    /// SDC AVF with a resolution floor of half an event: a campaign that
    /// observed zero SDCs can only bound the AVF, not prove it zero
    /// (relevant for the CNNs, whose classification tolerance masks
    /// almost everything).
    pub fn sdc_avf_floored(&self) -> f64 {
        self.sdc_avf().max(0.5 / self.counts.total().max(1) as f64)
    }

    /// DUE AVF with the same resolution floor.
    pub fn due_avf_floored(&self) -> f64 {
        self.due_avf().max(0.5 / self.counts.total().max(1) as f64)
    }

    /// DUE AVF point estimate.
    pub fn due_avf(&self) -> f64 {
        self.due.0
    }
}

/// The modes an injector cycles through, given the target's dynamic site
/// populations (modes with an empty population are dropped).
fn available_modes(
    injector: Injector,
    sites: &gpu_sim::SiteCounts,
    unit_counts: &[u64; FunctionalUnit::COUNT],
) -> Vec<Mode> {
    let unit = |u: FunctionalUnit| unit_counts[u.index()];
    match injector {
        Injector::Sassifi => {
            // One mode per instruction group ("1,000 for each instruction
            // kind"), plus predicate, GPR and address modes.
            // Populations are sized by summing per-unit counts over the
            // shared predecode unit groups; `gpu_arch::decode` tests pin
            // these groups equal to the engine's site-class tallies.
            let mut modes = Vec::new();
            let float: u64 = FP32_ARITH_UNITS.iter().map(|&u| unit(u)).sum();
            let double: u64 = FP64_ARITH_UNITS.iter().map(|&u| unit(u)).sum();
            let int: u64 = INT_ARITH_UNITS.iter().map(|&u| unit(u)).sum();
            if float + double > 0 {
                modes.push(Mode::Output(SiteClass::FloatArith));
                modes.push(Mode::OutputRandom(SiteClass::FloatArith));
                modes.push(Mode::OutputZero(SiteClass::FloatArith));
            }
            if int > 0 {
                modes.push(Mode::Output(SiteClass::IntArith));
                modes.push(Mode::OutputRandom(SiteClass::IntArith));
            }
            if sites.loads > 0 {
                modes.push(Mode::Output(SiteClass::Load));
            }
            if sites.setp > 0 {
                modes.push(Mode::Predicate);
            }
            modes.push(Mode::Register);
            if sites.mem_ops > 0 {
                modes.push(Mode::Address);
            }
            modes
        }
        Injector::NvBitFi => {
            // Injections into instructions that write GPRs — excluding
            // half-precision ops (documented limitation).
            if sites.gpr_writers_no_half > 0 {
                vec![Mode::Output(SiteClass::GprWriterNoHalf)]
            } else {
                Vec::new()
            }
        }
    }
}

/// Population size of a site class (for uniform `nth` sampling).
fn class_population(
    class: SiteClass,
    sites: &gpu_sim::SiteCounts,
    unit_counts: &[u64; FunctionalUnit::COUNT],
) -> u64 {
    let unit = |u: FunctionalUnit| unit_counts[u.index()];
    match class {
        SiteClass::GprWriter => sites.gpr_writers,
        SiteClass::GprWriterNoHalf => sites.gpr_writers_no_half,
        SiteClass::FloatArith => {
            FP32_ARITH_UNITS.iter().chain(FP64_ARITH_UNITS.iter()).map(|&u| unit(u)).sum()
        }
        SiteClass::HalfArith => HALF_ARITH_UNITS.iter().map(|&u| unit(u)).sum(),
        SiteClass::IntArith => INT_ARITH_UNITS.iter().map(|&u| unit(u)).sum(),
        SiteClass::Load => sites.loads,
        SiteClass::Unit(u) => unit(u),
    }
}

/// Bit-width hint for sampling a flip position in a class.
fn class_bits(class: SiteClass) -> u32 {
    match class {
        SiteClass::HalfArith => 16,
        SiteClass::Unit(u) => match u {
            FunctionalUnit::Hadd
            | FunctionalUnit::Hmul
            | FunctionalUnit::Hfma
            | FunctionalUnit::Hmma => 16,
            FunctionalUnit::Dadd | FunctionalUnit::Dmul | FunctionalUnit::Dfma => 64,
            _ => 32,
        },
        // NVBitFI and SASSIFI flip bits of 32-bit architectural registers;
        // 64-bit values occupy two registers and each injection touches
        // one of them — the low word here (documented simplification).
        _ => 32,
    }
}

/// Draw one fault plan for `mode`.
fn sample_plan<R: Rng>(
    rng: &mut R,
    mode: Mode,
    golden: &Executed,
    target_launch: &LaunchConfig,
    regs_per_thread: u16,
) -> Option<FaultPlan> {
    let sites = &golden.counts.sites;
    match mode {
        Mode::Output(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            let nth = rng.gen_range(0..pop);
            let bit = rng.gen_range(0..class_bits(class));
            Some(FaultPlan::InstructionOutput { nth, site: class, flip: BitFlip::single(bit) })
        }
        Mode::OutputRandom(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            Some(FaultPlan::InstructionOutputSet {
                nth: rng.gen_range(0..pop),
                site: class,
                value: rng.gen::<u64>(),
            })
        }
        Mode::OutputZero(class) => {
            let pop = class_population(class, sites, &golden.counts.per_unit);
            if pop == 0 {
                return None;
            }
            Some(FaultPlan::InstructionOutputSet {
                nth: rng.gen_range(0..pop),
                site: class,
                value: 0,
            })
        }
        Mode::Predicate => {
            if sites.setp == 0 {
                return None;
            }
            Some(FaultPlan::PredicateOutput { nth: rng.gen_range(0..sites.setp) })
        }
        Mode::Register => {
            let at = rng.gen_range(0..golden.counts.total.max(1));
            let block = rng.gen_range(0..target_launch.grid.count()) as u32;
            let thread = rng.gen_range(0..target_launch.block.count()) as u32;
            let reg = rng.gen_range(0..regs_per_thread.max(1)) as u8;
            Some(FaultPlan::RegisterBit {
                block,
                thread,
                reg,
                flip: BitFlip::single(rng.gen_range(0..32)),
                at,
            })
        }
        Mode::Address => {
            if sites.mem_ops == 0 {
                return None;
            }
            Some(FaultPlan::MemAddress {
                nth: rng.gen_range(0..sites.mem_ops),
                flip: BitFlip::single(rng.gen_range(0..32)),
            })
        }
    }
}

/// How the static oracle resolved one sampled fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StaticResolution {
    /// No proof applies: simulate the trial.
    Simulate,
    /// Provably Masked: no observed bit ever differs from the golden run.
    Masked,
    /// Provably a DUE of this kind: the corrupted value reaches a
    /// misaligned or out-of-bounds access before anything else can
    /// observe it.
    Due(gpu_sim::DueKind),
}

/// The static fault-resolution oracle backing pruned AVF campaigns
/// ([`Avf::new_pruned`]).
///
/// Built from the memoized [`sass_analysis::analyze`] result —
/// [`sass_analysis::StaticMasks`] (bit-level liveness) plus
/// [`sass_analysis::KernelVerdicts`] (value-flow taint verdicts and
/// interval/alignment DUE proofs) — and the golden run's site provenance
/// ([`gpu_sim::SitesRecord`]), which resolves a sampled `nth` dynamic
/// site to the static pc the corruption lands on. A trial the oracle
/// proves Masked (or a DUE of a specific kind) is tallied directly
/// instead of simulated; the outcome counts are bit-identical to the
/// unpruned campaign because the sampler consumes the RNG identically
/// and only replaces provably-resolved executions.
struct PruneState {
    analysis: Arc<sass_analysis::KernelAnalysis>,
    /// Per site class in the mode rotation: the golden dynamic site
    /// stream filtered to that class, mirroring the engine's in-order
    /// `site_matches` numbering.
    class_streams: Vec<(SiteClass, Vec<u32>)>,
    /// Per linear block: `[start, end)` dynamic-index residency window.
    block_windows: Vec<(u64, u64)>,
    /// Dynamic memory-op pc stream (the engine's `MemAddress` `nth`
    /// numbering).
    mem_pcs: Vec<u32>,
    /// Dynamic SETP pc stream (the engine's `PredicateOutput` `nth`
    /// numbering).
    setp_pcs: Vec<u32>,
}

impl PruneState {
    fn build(
        kernel: &gpu_arch::Kernel,
        launch: &LaunchConfig,
        global_bytes: u64,
        record: &gpu_sim::SitesRecord,
        modes: &[Mode],
    ) -> Self {
        let mut classes: Vec<SiteClass> = Vec::new();
        for m in modes {
            if let Mode::Output(c) | Mode::OutputRandom(c) | Mode::OutputZero(c) = *m {
                if !classes.contains(&c) {
                    classes.push(c);
                }
            }
        }
        let class_streams = classes
            .into_iter()
            .map(|c| {
                let stream = record
                    .site_pcs
                    .iter()
                    .copied()
                    .filter(|&pc| c.matches(kernel.instrs[pc as usize].op))
                    .collect();
                (c, stream)
            })
            .collect();
        let ctx = sass_analysis::AnalysisContext::for_launch(launch, global_bytes);
        PruneState {
            analysis: sass_analysis::analyze(kernel, &ctx),
            class_streams,
            block_windows: record.block_windows.clone(),
            mem_pcs: record.mem_pcs.clone(),
            setp_pcs: record.setp_pcs.clone(),
        }
    }

    /// Static pc of the `nth` dynamic site of `class` (the instruction the
    /// engine's in-order site numbering lands the fault on).
    fn pc_of(&self, class: SiteClass, nth: u64) -> Option<u32> {
        let stream = &self.class_streams.iter().find(|(c, _)| *c == class)?.1;
        stream.get(nth as usize).copied()
    }

    /// Statically resolve `plan`. Sound only for ECC-off runs (AVF
    /// campaigns), where a register strike lands raw instead of being
    /// corrected/detected.
    fn resolve(&self, plan: &FaultPlan, regs_per_thread: u16) -> StaticResolution {
        use sass_analysis::SiteVerdict;
        let masks = &self.analysis.masks;
        let verdicts = &self.analysis.verdicts;
        match *plan {
            FaultPlan::InstructionOutput { nth, site, flip } => {
                let Some(pc) = self.pc_of(site, nth) else {
                    return StaticResolution::Simulate;
                };
                if masks.output_flip_masked(pc, flip.mask)
                    || verdicts.output_verdict(pc) == SiteVerdict::ProvenMasked
                {
                    return StaticResolution::Masked;
                }
                if let Some(kind) = verdicts.output_flip_due(pc, flip.mask) {
                    return StaticResolution::Due(kind);
                }
                StaticResolution::Simulate
            }
            FaultPlan::InstructionOutputSet { nth, site, .. } => {
                let masked = self.pc_of(site, nth).is_some_and(|pc| {
                    masks.output_replace_masked(pc)
                        || verdicts.output_verdict(pc) == SiteVerdict::ProvenMasked
                });
                if masked {
                    StaticResolution::Masked
                } else {
                    StaticResolution::Simulate
                }
            }
            FaultPlan::RegisterBit { block, thread: _, reg, flip, at } => {
                let Some(&(start, end)) = self.block_windows.get(block as usize) else {
                    return StaticResolution::Simulate;
                };
                if at < start || at >= end {
                    // Blocks run sequentially; a strike timed outside the
                    // target block's residency window is the engine's
                    // "target block not resident" no-op.
                    return StaticResolution::Masked;
                }
                if masks.register_flip_masked(reg, regs_per_thread, flip.mask as u32) {
                    StaticResolution::Masked
                } else {
                    StaticResolution::Simulate
                }
            }
            FaultPlan::PredicateOutput { nth } => {
                let masked = self
                    .setp_pcs
                    .get(nth as usize)
                    .is_some_and(|&pc| verdicts.predicate_verdict(pc) == SiteVerdict::ProvenMasked);
                if masked {
                    StaticResolution::Masked
                } else {
                    StaticResolution::Simulate
                }
            }
            FaultPlan::MemAddress { nth, flip } => {
                let due = self
                    .mem_pcs
                    .get(nth as usize)
                    .and_then(|&pc| verdicts.mem_flip_due(pc, flip.mask));
                match due {
                    Some(kind) => StaticResolution::Due(kind),
                    None => StaticResolution::Simulate,
                }
            }
            // PC and whole-value memory faults are never resolved
            // statically.
            _ => StaticResolution::Simulate,
        }
    }

    /// Verdict stratum of the static site `plan` lands on, for the
    /// campaign's `campaign.pruned.*` / `campaign.verdict.*` telemetry.
    fn stratum_of(&self, plan: &FaultPlan) -> Option<&'static str> {
        let verdicts = &self.analysis.verdicts;
        let verdict = match *plan {
            FaultPlan::InstructionOutput { nth, site, .. }
            | FaultPlan::InstructionOutputSet { nth, site, .. } => {
                verdicts.output_verdict(self.pc_of(site, nth)?)
            }
            FaultPlan::PredicateOutput { nth } => {
                verdicts.predicate_verdict(*self.setp_pcs.get(nth as usize)?)
            }
            FaultPlan::MemAddress { nth, .. } => {
                verdicts.mem_verdict(*self.mem_pcs.get(nth as usize)?)
            }
            // Register-file strikes have no single static site.
            _ => return None,
        };
        Some(stratum_name(verdict))
    }
}

/// Collapse a [`sass_analysis::SiteVerdict`] to the four-stratum naming
/// used by [`sass_analysis::VerdictSummary`] and the campaign counters
/// (`AddressReaching` and `ControlReaching` are both DUE-prone and
/// share the `addr_ctl` stratum).
fn stratum_name(v: sass_analysis::SiteVerdict) -> &'static str {
    use sass_analysis::SiteVerdict;
    match v {
        SiteVerdict::ProvenMasked => "masked",
        SiteVerdict::StoreReaching => "store",
        SiteVerdict::AddressReaching | SiteVerdict::ControlReaching => "addr_ctl",
        SiteVerdict::Unknown => "unknown",
    }
}

/// Classify one faulty run against the golden run.
pub fn classify<T: Target + ?Sized>(target: &T, golden: &Executed, faulty: &Executed) -> Outcome {
    match faulty.status {
        ExecStatus::Due(_) => Outcome::Due,
        ExecStatus::Completed => {
            if target.output_matches(golden, faulty) {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// The AVF campaign kind: single-bit (and SASSIFI RV/ZV) faults drawn
/// uniformly over the injector's site population, cycling the budget
/// evenly across the available modes.
///
/// Injection runs execute with ECC disabled in the simulator: an
/// instrumentation-based injector writes state architecturally, so ECC
/// never sees a raw bit error (unlike particle strikes).
///
/// Check [`Injector::supports`] before running: `prepare` panics on an
/// unsupported (target, device) pair, mirroring the real frameworks'
/// hard instrumentation failures.
#[derive(Clone, Copy, Debug)]
pub struct Avf {
    /// Which framework's capability model to apply.
    pub injector: Injector,
    /// Skip trials a static proof already classifies as Masked or as a
    /// DUE (see [`Avf::new_pruned`]). Outcome tallies are bit-identical
    /// to the unpruned campaign; only the number of *simulated* trials
    /// shrinks.
    pub pruned: bool,
}

impl Avf {
    /// An AVF campaign kind for `injector`.
    pub fn new(injector: Injector) -> Self {
        Avf { injector, pruned: false }
    }

    /// [`Avf::new`] with static-resolution pruning: trials whose sampled
    /// fault is provably unobservable (dead destination bits, sites whose
    /// value-flow taint reaches no store/address/branch, never-read
    /// register bits, strikes timed outside the target block's residency)
    /// are tallied Masked directly, and single-bit flips proven to
    /// produce a misaligned or out-of-bounds access are tallied as DUEs
    /// of the proven kind — both without simulating. The sampler draws
    /// from the RNG exactly as the unpruned campaign does, so
    /// SDC/DUE/Masked counts match it bit for bit at equal seeds.
    pub fn new_pruned(injector: Injector) -> Self {
        Avf { injector, pruned: true }
    }
}

/// Sampler state for [`Avf`]: the golden run's site populations and the
/// mode rotation (plus the static masking oracle when pruning).
pub struct AvfSampler {
    golden: Arc<Executed>,
    modes: Vec<Mode>,
    launch: LaunchConfig,
    regs_per_thread: u16,
    prune: Option<PruneState>,
}

impl Sampler for AvfSampler {
    fn sample(&self, trial: u64, rng: &mut ChaCha12Rng) -> TrialPlan {
        // SASSIFI splits the budget evenly across instruction kinds
        // ("1,000 for each instruction kind"); cycling on the global
        // trial index achieves the same, independent of sharding.
        let mode = self.modes[(trial % self.modes.len() as u64) as usize];
        match sample_plan(rng, mode, &self.golden, &self.launch, self.regs_per_thread) {
            Some(plan) => {
                if let Some(pr) = &self.prune {
                    match pr.resolve(&plan, self.regs_per_thread) {
                        StaticResolution::Masked => {
                            return TrialPlan::Direct {
                                outcome: Outcome::Masked,
                                due: None,
                                label: "static-masked",
                            };
                        }
                        StaticResolution::Due(kind) => {
                            return TrialPlan::Direct {
                                outcome: Outcome::Due,
                                due: Some(kind),
                                label: "static-due",
                            };
                        }
                        StaticResolution::Simulate => {}
                    }
                }
                TrialPlan::Fault(plan)
            }
            // A mode whose population turned out empty: the fault has no
            // site to land on, so the run is trivially masked.
            None => TrialPlan::Direct { outcome: Outcome::Masked, due: None, label: "presampled" },
        }
    }

    fn stratum(&self, _trial: u64, plan: &TrialPlan) -> Option<&'static str> {
        let pr = self.prune.as_ref()?;
        match plan {
            // Pruned trials: proven-Masked sites land in the masked
            // stratum; proven-DUE sites are DUE-prone by construction
            // (the corrupted value reaches an address), so they count
            // under the DUE-prone stratum.
            TrialPlan::Direct { label, .. } => match *label {
                "static-masked" => Some("masked"),
                "static-due" => Some("addr_ctl"),
                _ => None,
            },
            TrialPlan::Fault(plan) => pr.stratum_of(plan),
        }
    }
}

impl<T: Target + Sync + ?Sized> Kind<T> for Avf {
    type Sampler = AvfSampler;
    type Output = AvfResult;

    fn label(&self) -> String {
        let base = match self.injector {
            Injector::Sassifi => "avf/sassifi",
            Injector::NvBitFi => "avf/nvbitfi",
        };
        if self.pruned {
            format!("{base}+prune")
        } else {
            base.to_string()
        }
    }

    fn ecc(&self) -> bool {
        false
    }

    fn record_sites(&self) -> bool {
        self.pruned
    }

    fn prepare(&self, target: &T, device: &DeviceModel, golden: &Arc<Executed>) -> AvfSampler {
        if let Err(why) = self.injector.supports(target, device) {
            panic!("{} cannot instrument {}: {why}", self.injector, target.name());
        }
        let modes = available_modes(self.injector, &golden.counts.sites, &golden.counts.per_unit);
        assert!(!modes.is_empty(), "no injectable sites in {}", target.name());
        let prune = self.pruned.then(|| {
            let record = golden
                .sites_record
                .as_ref()
                .expect("pruned AVF campaign requires a site-recorded golden run");
            PruneState::build(
                target.kernel(),
                target.launch(),
                golden.memory.len() as u64,
                record,
                &modes,
            )
        });
        AvfSampler {
            golden: Arc::clone(golden),
            modes,
            launch: target.launch().clone(),
            regs_per_thread: target.kernel().regs_per_thread,
            prune,
        }
    }

    fn finish(&self, target: &T, _sampler: &AvfSampler, run: &CampaignRun) -> AvfResult {
        AvfResult::from_counts(target.name().to_string(), self.injector, run.counts)
    }
}

/// A capability-ablation campaign kind: injections restricted to one site
/// class, regardless of any real framework's mode set. Used for the
/// Figure 3 / Section V-A unit-AVF de-masking and for "what if NVBitFI
/// could inject into half-precision?" ablations (Section VII-A).
///
/// Results are reported under [`Injector::NvBitFi`], the framework such
/// single-class campaigns model.
#[derive(Clone, Copy, Debug)]
pub struct ClassAvf {
    /// The site class all faults target.
    pub class: SiteClass,
}

impl ClassAvf {
    /// A campaign kind injecting only into `class`.
    pub fn new(class: SiteClass) -> Self {
        ClassAvf { class }
    }

    /// A campaign kind injecting only into outputs of `unit` (the
    /// micro-benchmark unit-AVF measurement).
    pub fn unit(unit: FunctionalUnit) -> Self {
        ClassAvf { class: SiteClass::Unit(unit) }
    }
}

/// Sampler state for [`ClassAvf`]: the class population and flip width.
pub struct ClassAvfSampler {
    class: SiteClass,
    population: u64,
    bits: u32,
}

impl Sampler for ClassAvfSampler {
    fn sample(&self, _trial: u64, rng: &mut ChaCha12Rng) -> TrialPlan {
        if self.population == 0 {
            return TrialPlan::Direct { outcome: Outcome::Masked, due: None, label: "empty-class" };
        }
        TrialPlan::Fault(FaultPlan::InstructionOutput {
            nth: rng.gen_range(0..self.population),
            site: self.class,
            flip: BitFlip::single(rng.gen_range(0..self.bits)),
        })
    }
}

impl<T: Target + Sync + ?Sized> Kind<T> for ClassAvf {
    type Sampler = ClassAvfSampler;
    type Output = AvfResult;

    fn label(&self) -> String {
        format!("avf/class/{}", self.class.label())
    }

    fn ecc(&self) -> bool {
        false
    }

    fn prepare(
        &self,
        _target: &T,
        _device: &DeviceModel,
        golden: &Arc<Executed>,
    ) -> ClassAvfSampler {
        ClassAvfSampler {
            class: self.class,
            population: class_population(self.class, &golden.counts.sites, &golden.counts.per_unit),
            bits: class_bits(self.class),
        }
    }

    fn finish(&self, target: &T, _sampler: &ClassAvfSampler, run: &CampaignRun) -> AvfResult {
        AvfResult::from_counts(target.name().to_string(), Injector::NvBitFi, run.counts)
    }
}

/// AVF broken down by injection-site class: which *kind* of instruction,
/// once corrupted, drives the code's failure rate. The paper's conclusion
/// ("this data can be used to tune future fault simulation frameworks")
/// calls for exactly this decomposition.
#[derive(Clone, Debug)]
pub struct AvfBreakdown {
    /// Target name.
    pub target: String,
    /// Per-class results (classes with zero population are omitted).
    pub per_class: Vec<(SiteClass, AvfResult)>,
}

/// Measure the SDC/DUE AVF separately per site class. Every per-class
/// campaign shares the same cached golden run and `budget`.
pub fn measure_avf_breakdown<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    budget: &Budget,
) -> AvfBreakdown {
    let (golden, _) =
        campaign::golden::fetch(target, device, campaign::golden::GoldenRequest::new(false))
            .expect("golden run failed");
    let classes =
        [SiteClass::FloatArith, SiteClass::HalfArith, SiteClass::IntArith, SiteClass::Load];
    let mut per_class = Vec::new();
    for class in classes {
        let pop = class_population(class, &golden.counts.sites, &golden.counts.per_unit);
        if pop == 0 {
            continue;
        }
        let r = Campaign::new(ClassAvf::new(class), target, device)
            .budget(budget.clone())
            .run()
            .expect("class-AVF campaign failed");
        per_class.push((class, r));
    }
    AvfBreakdown { target: target.name().to_string(), per_class }
}

/// One hidden micro-architectural resource class — state neither SASSIFI
/// nor NVBitFI can reach, and the paper's explanation for their
/// orders-of-magnitude DUE underestimation (Section VII-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HiddenClass {
    /// Warp-scheduler entries: next-pc fields and issue priority.
    Scheduler,
    /// Fetch/decode stage: stale instruction replays and opcode-bit flips.
    Fetch,
    /// Warp active masks: lanes forced off or exited lanes revived.
    Mask,
    /// Block barrier arrival counters: phantom and lost arrivals.
    Barrier,
    /// Pending-memory-queue entries: drops, stuck replays, poison flags.
    MemQueue,
}

impl HiddenClass {
    /// Every hidden class, in reporting order.
    pub const ALL: [HiddenClass; 5] = [
        HiddenClass::Scheduler,
        HiddenClass::Fetch,
        HiddenClass::Mask,
        HiddenClass::Barrier,
        HiddenClass::MemQueue,
    ];

    /// Short identifier used in coverage labels, metric names
    /// (`campaign.hidden.<label>.*`) and gap reports.
    pub fn label(self) -> &'static str {
        match self {
            HiddenClass::Scheduler => "scheduler",
            HiddenClass::Fetch => "fetch",
            HiddenClass::Mask => "mask",
            HiddenClass::Barrier => "barrier",
            HiddenClass::MemQueue => "memq",
        }
    }

    /// The site label the engine reports for this class's fault plans
    /// (matches [`FaultPlan::site_label`]).
    pub fn site_label(self) -> &'static str {
        match self {
            HiddenClass::Scheduler => "hidden-scheduler",
            HiddenClass::Fetch => "hidden-fetch",
            HiddenClass::Mask => "hidden-mask",
            HiddenClass::Barrier => "hidden-barrier",
            HiddenClass::MemQueue => "hidden-memq",
        }
    }

    fn bit(self) -> u8 {
        match self {
            HiddenClass::Scheduler => 1 << 0,
            HiddenClass::Fetch => 1 << 1,
            HiddenClass::Mask => 1 << 2,
            HiddenClass::Barrier => 1 << 3,
            HiddenClass::MemQueue => 1 << 4,
        }
    }
}

impl fmt::Display for HiddenClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Which hidden resource classes a campaign (and hence a prediction) can
/// reach — the independent variable of the Figure 6 gap-closure ladder.
/// An empty coverage models today's architecture-level injectors; full
/// coverage models an injector extended with every hidden site the
/// simulator exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct HiddenCoverage {
    bits: u8,
}

impl HiddenCoverage {
    /// No hidden class covered (the register-only status quo).
    pub fn none() -> Self {
        HiddenCoverage { bits: 0 }
    }

    /// Every hidden class covered.
    pub fn full() -> Self {
        HiddenCoverage::of(&HiddenClass::ALL)
    }

    /// Coverage of exactly `classes`.
    pub fn of(classes: &[HiddenClass]) -> Self {
        classes.iter().fold(HiddenCoverage::none(), |c, &cl| c.with(cl))
    }

    /// This coverage extended with `class`.
    pub fn with(self, class: HiddenClass) -> Self {
        HiddenCoverage { bits: self.bits | class.bit() }
    }

    /// Does this coverage include `class`?
    pub fn covers(self, class: HiddenClass) -> bool {
        self.bits & class.bit() != 0
    }

    /// The covered classes, in [`HiddenClass::ALL`] order.
    pub fn classes(self) -> Vec<HiddenClass> {
        HiddenClass::ALL.into_iter().filter(|&c| self.covers(c)).collect()
    }

    /// Number of covered classes.
    pub fn count(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True when no class is covered.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Stable label: `none`, `full`, or a `+`-joined class list.
    pub fn label(self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        if self == HiddenCoverage::full() {
            return "full".to_string();
        }
        self.classes().iter().map(|c| c.label()).collect::<Vec<_>>().join("+")
    }
}

impl fmt::Display for HiddenCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The result of a hidden-resource injection campaign.
#[derive(Clone, Debug)]
pub struct HiddenResult {
    /// Target name.
    pub target: String,
    /// The coverage the campaign sampled from.
    pub coverage: HiddenCoverage,
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// SDC probability with 95% CI.
    pub sdc: (f64, f64, f64),
    /// DUE probability with 95% CI.
    pub due: (f64, f64, f64),
    /// Masked fraction.
    pub masked: f64,
}

impl HiddenResult {
    fn from_counts(target: String, coverage: HiddenCoverage, counts: OutcomeCounts) -> Self {
        let total = counts.total();
        let (slo, shi) = binomial_ci95(counts.sdc, total);
        let (dlo, dhi) = binomial_ci95(counts.due, total);
        HiddenResult {
            target,
            coverage,
            counts,
            sdc: (counts.sdc_fraction(), slo, shi),
            due: (counts.due_fraction(), dlo, dhi),
            masked: counts.masked_fraction(),
        }
    }

    /// P(SDC | hidden strike) point estimate.
    pub fn sdc_avf(&self) -> f64 {
        self.sdc.0
    }

    /// P(DUE | hidden strike) point estimate.
    pub fn due_avf(&self) -> f64 {
        self.due.0
    }

    /// [`HiddenResult::due_avf`] with a half-event resolution floor.
    pub fn due_avf_floored(&self) -> f64 {
        self.due_avf().max(0.5 / self.counts.total().max(1) as f64)
    }
}

/// The hidden classes `target`'s golden run actually exercises: scheduler,
/// fetch and mask state exist for every kernel; barrier counters only for
/// kernels that synchronize; the pending-memory queue only when the run
/// performs memory operations.
pub fn hidden_classes_available(kernel: &gpu_arch::Kernel, golden: &Executed) -> Vec<HiddenClass> {
    let mut classes = vec![HiddenClass::Scheduler, HiddenClass::Fetch, HiddenClass::Mask];
    if kernel.instrs.iter().any(|i| i.op == Op::Bar) {
        classes.push(HiddenClass::Barrier);
    }
    if golden.counts.sites.mem_ops > 0 {
        classes.push(HiddenClass::MemQueue);
    }
    classes
}

/// The hidden-resource campaign kind: faults drawn uniformly over the
/// covered (and live) hidden classes, cycling the budget evenly across
/// them the way [`Avf`] cycles injection modes. Each trial draws the
/// persistence first (transient vs. stuck-at, 50/50, following the NSREC
/// 2021 parallelism-management observations), then the class-specific
/// site.
///
/// Like instrumentation-based injection, trials run with ECC off — the
/// corrupted state (scheduler SRAM, queue entries, fetch latches) is
/// outside the ECC-protected register/memory arrays anyway.
#[derive(Clone, Copy, Debug)]
pub struct HiddenAvf {
    /// Which hidden classes faults may land on.
    pub coverage: HiddenCoverage,
}

impl HiddenAvf {
    /// A hidden campaign over `coverage`.
    pub fn new(coverage: HiddenCoverage) -> Self {
        HiddenAvf { coverage }
    }

    /// A hidden campaign over every class.
    pub fn full() -> Self {
        HiddenAvf::new(HiddenCoverage::full())
    }

    /// A hidden campaign over exactly one class (the per-class
    /// P(DUE | strike) measurement predictions consume).
    pub fn class(class: HiddenClass) -> Self {
        HiddenAvf::new(HiddenCoverage::of(&[class]))
    }
}

/// Sampler state for [`HiddenAvf`]: the live covered classes and the
/// golden run's population sizes.
pub struct HiddenSampler {
    classes: Vec<HiddenClass>,
    total: u64,
    mem_ops: u64,
    warps_per_block: u32,
}

impl Sampler for HiddenSampler {
    fn sample(&self, trial: u64, rng: &mut ChaCha12Rng) -> TrialPlan {
        let class = self.classes[(trial % self.classes.len() as u64) as usize];
        let persist = if rng.gen_bool(0.5) { Persistence::StuckAt } else { Persistence::Transient };
        let plan = match class {
            HiddenClass::Scheduler => {
                let at = rng.gen_range(0..self.total);
                let warp = rng.gen_range(0..self.warps_per_block);
                if rng.gen_bool(0.5) {
                    FaultPlan::SchedulerNextPc {
                        at,
                        warp,
                        flip: BitFlip::single(rng.gen_range(0..16)),
                        persist,
                    }
                } else {
                    FaultPlan::SchedulerPriority { at, warp, persist }
                }
            }
            HiddenClass::Fetch => {
                let at = rng.gen_range(0..self.total);
                let effect = if rng.gen_bool(0.5) {
                    FetchEffect::StaleReplay
                } else {
                    FetchEffect::OpcodeFlip(BitFlip::single(rng.gen_range(0..16)))
                };
                FaultPlan::Fetch { at, effect, persist }
            }
            HiddenClass::Mask => FaultPlan::ActiveMask {
                at: rng.gen_range(0..self.total),
                warp: rng.gen_range(0..self.warps_per_block),
                flip: BitFlip::single(rng.gen_range(0..32)),
                persist,
            },
            HiddenClass::Barrier => FaultPlan::BarrierCounter {
                at: rng.gen_range(0..self.total),
                phantom: rng.gen_bool(0.5),
                persist,
            },
            HiddenClass::MemQueue => {
                let nth = rng.gen_range(0..self.mem_ops);
                let effect = match rng.gen_range(0..3u32) {
                    0 => MemQueueEffect::Drop,
                    1 => MemQueueEffect::Replay,
                    _ => MemQueueEffect::Flag,
                };
                FaultPlan::MemQueue { nth, effect, persist }
            }
        };
        TrialPlan::Fault(plan)
    }
}

impl<T: Target + Sync + ?Sized> Kind<T> for HiddenAvf {
    type Sampler = HiddenSampler;
    type Output = HiddenResult;

    fn label(&self) -> String {
        format!("avf/hidden/{}", self.coverage.label())
    }

    fn ecc(&self) -> bool {
        false
    }

    fn prepare(&self, target: &T, _device: &DeviceModel, golden: &Arc<Executed>) -> HiddenSampler {
        let available = hidden_classes_available(target.kernel(), golden);
        let classes: Vec<HiddenClass> =
            available.into_iter().filter(|&c| self.coverage.covers(c)).collect();
        assert!(
            !classes.is_empty(),
            "hidden coverage '{}' reaches no live resource in {}",
            self.coverage,
            target.name()
        );
        HiddenSampler {
            classes,
            total: golden.counts.total.max(1),
            mem_ops: golden.counts.sites.mem_ops,
            warps_per_block: target.launch().block.count().div_ceil(32).max(1) as u32,
        }
    }

    fn finish(&self, target: &T, _sampler: &HiddenSampler, run: &CampaignRun) -> HiddenResult {
        HiddenResult::from_counts(target.name().to_string(), self.coverage, run.counts)
    }
}

/// P(DUE | strike) broken down per hidden class: the calibration table a
/// hidden-aware DUE prediction multiplies against the beam room's hidden
/// strike rates.
#[derive(Clone, Debug)]
pub struct HiddenBreakdown {
    /// Target name.
    pub target: String,
    /// Per-class results (classes the target never exercises are
    /// omitted).
    pub per_class: Vec<(HiddenClass, HiddenResult)>,
}

impl HiddenBreakdown {
    /// P(DUE | strike in `class`), if the target exercises it.
    pub fn due_fraction(&self, class: HiddenClass) -> Option<f64> {
        self.per_class.iter().find(|(c, _)| *c == class).map(|(_, r)| r.due_avf())
    }
}

/// Measure P(SDC/DUE | strike) separately per live hidden class. Every
/// per-class campaign shares the same cached golden run and `budget`.
pub fn measure_hidden_breakdown<T: Target + Sync + ?Sized>(
    target: &T,
    device: &DeviceModel,
    budget: &Budget,
) -> HiddenBreakdown {
    let (golden, _) =
        campaign::golden::fetch(target, device, campaign::golden::GoldenRequest::new(false))
            .expect("golden run failed");
    let mut per_class = Vec::new();
    for class in hidden_classes_available(target.kernel(), &golden) {
        let r = Campaign::new(HiddenAvf::class(class), target, device)
            .budget(budget.clone())
            .run()
            .expect("hidden-class campaign failed");
        per_class.push((class, r));
    }
    HiddenBreakdown { target: target.name().to_string(), per_class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::{CodeGen, Precision};
    use workloads::{build, Benchmark, Scale};

    fn budget(n: u32) -> Budget {
        Budget::fixed(n).seed(42)
    }

    fn avf<T: Target + Sync + ?Sized>(
        injector: Injector,
        target: &T,
        device: &DeviceModel,
        n: u32,
    ) -> AvfResult {
        Campaign::new(Avf::new(injector), target, device).budget(budget(n)).run().unwrap()
    }

    #[test]
    fn sassifi_rejects_volta_and_proprietary() {
        let volta = DeviceModel::named("v100-sim");
        let kepler = DeviceModel::named("k40c-sim");
        let mxm = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let gemm = build(Benchmark::Gemm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        assert_eq!(
            Injector::Sassifi.supports(&mxm, &volta),
            Err(Unsupported::Device(volta.name.clone()))
        );
        assert_eq!(Injector::Sassifi.supports(&mxm, &kepler), Ok(()));
        assert_eq!(Injector::Sassifi.supports(&gemm, &kepler), Err(Unsupported::ProprietaryKernel));
        assert_eq!(Injector::NvBitFi.supports(&gemm, &volta), Ok(()));
        assert_eq!(Injector::NvBitFi.supports(&gemm, &kepler), Ok(()));
    }

    #[test]
    fn campaign_is_reproducible() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let a = avf(Injector::Sassifi, &w, &kepler, 60);
        let b = avf(Injector::Sassifi, &w, &kepler, 60);
        assert_eq!(a.counts, b.counts);
    }

    /// The pruning regression contract: at equal seeds a pruned campaign
    /// must reproduce the unpruned SDC/DUE/Masked tallies bit for bit
    /// while *simulating* strictly fewer trials. If the static oracle
    /// ever mislabeled a consequential fault as Masked, the tallies would
    /// diverge here.
    #[test]
    fn pruned_campaign_is_bit_identical_and_simulates_fewer_trials() {
        let cases: [(Injector, DeviceModel, Precision); 2] = [
            (Injector::NvBitFi, DeviceModel::named("v100-sim"), Precision::Half),
            (Injector::Sassifi, DeviceModel::named("k40c-sim"), Precision::Single),
        ];
        for (injector, device, precision) in cases {
            let w = build(Benchmark::Mxm, precision, CodeGen::Cuda7, Scale::Tiny);
            let (base, base_run) = Campaign::new(Avf::new(injector), &w, &device)
                .budget(budget(200))
                .run_full()
                .unwrap();
            let (pruned, pruned_run) = Campaign::new(Avf::new_pruned(injector), &w, &device)
                .budget(budget(200))
                .run_full()
                .unwrap();
            assert_eq!(base.counts, pruned.counts, "{injector} tallies diverged");
            assert!(
                pruned_run.executed.total() < base_run.executed.total(),
                "{injector}: pruned campaign simulated {} of {} trials",
                pruned_run.executed.total(),
                base_run.executed.total(),
            );
            let skipped = pruned_run.direct.get("static-masked").map_or(0, |c| c.total())
                + pruned_run.direct.get("static-due").map_or(0, |c| c.total());
            assert_eq!(
                skipped,
                base_run.executed.total() - pruned_run.executed.total(),
                "{injector}: every skipped trial is tallied under static-masked/static-due"
            );
            // The verdict strata partition every resolved trial, and the
            // dynamic outcomes inside each stratum must respect its
            // static bound: a masked/addr_ctl-stratum SDC or a
            // store-stratum DUE would falsify the lattice.
            let pruned_total: u64 = pruned_run.strata_pruned.values().map(|c| c.total()).sum();
            assert_eq!(pruned_total, skipped, "{injector}: pruned strata cover skipped trials");
            for (s, c) in &pruned_run.strata_sim {
                match s.as_str() {
                    "masked" | "addr_ctl" => {
                        assert_eq!(c.sdc, 0, "{injector}: SDC in simulated {s} stratum")
                    }
                    "store" => assert_eq!(c.due, 0, "{injector}: DUE in simulated store stratum"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let runs: Vec<OutcomeCounts> = [1usize, 2, 5]
            .into_iter()
            .map(|workers| {
                Campaign::new(Avf::new(Injector::Sassifi), &w, &kepler)
                    .budget(budget(96).shard_size(16))
                    .workers(workers)
                    .run_full()
                    .unwrap()
                    .1
                    .counts
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let b = budget(80).shard_size(16);
        let mut checkpoints = Vec::new();
        let (_, full) = Campaign::new(Avf::new(Injector::Sassifi), &w, &kepler)
            .budget(b.clone())
            .on_checkpoint(|cp| checkpoints.push(cp.clone()))
            .run_full()
            .unwrap();
        assert_eq!(full.trials, 80);
        assert_eq!(checkpoints.len(), 5);
        // Round-trip the mid-campaign checkpoint through its JSONL form,
        // as a separate process would.
        let mid = campaign::Checkpoint::parse(&checkpoints[2].to_json_line()).unwrap();
        assert_eq!(mid.trials, 48);
        let (_, resumed) = Campaign::new(Avf::new(Injector::Sassifi), &w, &kepler)
            .budget(b)
            .resume_from(mid)
            .run_full()
            .unwrap();
        assert_eq!(resumed.counts, full.counts);
        assert_eq!(resumed.trials, full.trials);
        assert_eq!(resumed.resumed_trials, 48);
    }

    #[test]
    fn resume_rejects_mismatched_partition() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let b = budget(64).shard_size(16);
        let mut checkpoints = Vec::new();
        Campaign::new(Avf::new(Injector::Sassifi), &w, &kepler)
            .budget(b.clone())
            .on_checkpoint(|cp| checkpoints.push(cp.clone()))
            .run()
            .unwrap();
        let mid = checkpoints[1].clone();
        let err = Campaign::new(Avf::new(Injector::Sassifi), &w, &kepler)
            .budget(b.clone().seed(43))
            .resume_from(mid.clone())
            .run()
            .unwrap_err();
        assert!(matches!(err, campaign::CampaignError::CheckpointMismatch(_)));
        let err = Campaign::new(Avf::new(Injector::NvBitFi), &w, &kepler)
            .budget(b)
            .resume_from(mid)
            .run()
            .unwrap_err();
        assert!(matches!(err, campaign::CampaignError::CheckpointMismatch(_)));
    }

    #[test]
    fn avf_fractions_sum_to_one() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let r = avf(Injector::NvBitFi, &w, &kepler, 80);
        assert_eq!(r.counts.total(), 80);
        let sum = r.sdc_avf() + r.due_avf() + r.masked;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mxm_campaign_produces_all_outcome_kinds() {
        let kepler = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7, Scale::Tiny);
        let r = avf(Injector::Sassifi, &w, &kepler, 240);
        assert!(r.counts.sdc > 0, "no SDCs: {:?}", r.counts);
        assert!(r.counts.due > 0, "no DUEs: {:?}", r.counts);
        assert!(r.counts.masked > 0, "nothing masked: {:?}", r.counts);
    }

    #[test]
    fn unit_avf_of_integer_chain_is_high() {
        // Section V-A: micro-benchmark AVF is >= 70%, 100% for integer
        // versions (modulo the end-of-chain check masking).
        let kepler = DeviceModel::named("k40c-sim");
        let mb = microbench::arith(FunctionalUnit::Iadd);
        let r = Campaign::new(ClassAvf::unit(FunctionalUnit::Iadd), &mb, &kepler)
            .budget(budget(100))
            .run()
            .unwrap();
        assert!(r.sdc_avf() > 0.9, "IADD AVF {}", r.sdc_avf());
    }

    #[test]
    fn coverage_labels_and_membership() {
        assert_eq!(HiddenCoverage::none().label(), "none");
        assert_eq!(HiddenCoverage::full().label(), "full");
        assert_eq!(HiddenCoverage::full().count(), 5);
        let c = HiddenCoverage::of(&[HiddenClass::Scheduler, HiddenClass::MemQueue]);
        assert_eq!(c.label(), "scheduler+memq");
        assert!(c.covers(HiddenClass::Scheduler));
        assert!(!c.covers(HiddenClass::Fetch));
        assert_eq!(c.classes(), vec![HiddenClass::Scheduler, HiddenClass::MemQueue]);
        assert!(HiddenCoverage::none().is_empty());
    }

    #[test]
    fn hidden_campaign_is_reproducible_and_produces_dues() {
        let volta = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let run =
            |n: u32| Campaign::new(HiddenAvf::full(), &w, &volta).budget(budget(n)).run().unwrap();
        let a = run(120);
        let b = run(120);
        assert_eq!(a.counts, b.counts);
        // Hidden strikes are DUE-heavy: stalls, fetch faults, queue
        // poisons and deadlocks — the exact mechanisms register-level
        // injection never reaches.
        assert!(a.counts.due > 0, "no hidden DUEs: {:?}", a.counts);
        assert!(a.due_avf() > 0.2, "hidden DUE fraction {}", a.due_avf());
    }

    #[test]
    fn hidden_campaign_is_deterministic_across_worker_counts() {
        let volta = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let runs: Vec<OutcomeCounts> = [1usize, 2, 5]
            .into_iter()
            .map(|workers| {
                Campaign::new(HiddenAvf::full(), &w, &volta)
                    .budget(budget(96).shard_size(16))
                    .workers(workers)
                    .run_full()
                    .unwrap()
                    .1
                    .counts
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn hidden_coverage_restricts_the_sampled_sites() {
        let volta = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let (_, run) = Campaign::new(HiddenAvf::class(HiddenClass::MemQueue), &w, &volta)
            .budget(budget(40))
            .run_full()
            .unwrap();
        assert_eq!(run.trials, 40);
        // Single-class coverage is honored: the result's coverage label
        // round-trips and the campaign completes on just that class.
        let r = Campaign::new(HiddenAvf::class(HiddenClass::MemQueue), &w, &volta)
            .budget(budget(40))
            .run()
            .unwrap();
        assert_eq!(r.coverage.label(), "memq");
    }

    #[test]
    #[should_panic(expected = "reaches no live resource")]
    fn empty_hidden_coverage_panics() {
        let volta = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let _ = Campaign::new(HiddenAvf::new(HiddenCoverage::none()), &w, &volta)
            .budget(budget(10))
            .run();
    }

    #[test]
    fn hidden_breakdown_covers_live_classes_only() {
        let volta = DeviceModel::named("v100-sim");
        // MXM synchronizes and touches memory: every class is live.
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let b = measure_hidden_breakdown(&w, &volta, &Budget::fixed(50).seed(7));
        let classes: Vec<HiddenClass> = b.per_class.iter().map(|(c, _)| *c).collect();
        assert!(classes.contains(&HiddenClass::Scheduler));
        assert!(classes.contains(&HiddenClass::MemQueue));
        for (_, r) in &b.per_class {
            assert_eq!(r.counts.total(), 50);
        }
        // Scheduler strikes must be distinctly DUE-prone (stalls and
        // illegal fetches), the core of the paper's Section VII-B gap.
        assert!(
            b.due_fraction(HiddenClass::Scheduler).unwrap() > 0.2,
            "scheduler DUE fraction {:?}",
            b.due_fraction(HiddenClass::Scheduler)
        );
    }

    #[test]
    fn nvbitfi_never_injects_into_half_ops() {
        // On a half-precision workload NVBitFI still runs, but its site
        // population excludes the H* arithmetic.
        let volta = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Hotspot, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
        let g = w.golden(&volta);
        assert!(g.counts.sites.gpr_writers > g.counts.sites.gpr_writers_no_half);
        let r = avf(Injector::NvBitFi, &w, &volta, 50);
        assert_eq!(r.counts.total(), 50);
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use gpu_arch::{CodeGen, Precision};
    use workloads::{build, Benchmark, Scale};

    #[test]
    fn breakdown_covers_the_code_mix() {
        let device = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let b = measure_avf_breakdown(&w, &device, &Budget::fixed(60).seed(4));
        let classes: Vec<SiteClass> = b.per_class.iter().map(|(c, _)| *c).collect();
        assert!(classes.contains(&SiteClass::FloatArith));
        assert!(classes.contains(&SiteClass::IntArith));
        assert!(classes.contains(&SiteClass::Load));
        assert!(!classes.contains(&SiteClass::HalfArith)); // FP32 code
        for (_, r) in &b.per_class {
            assert_eq!(r.counts.total(), 60);
        }
    }

    #[test]
    fn float_faults_hit_harder_than_loop_overhead_in_mxm() {
        // Corrupting the FMA stream of a matrix multiply should produce at
        // least as many SDCs as corrupting the (partially dead) integer
        // address arithmetic.
        let device = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
        let b = measure_avf_breakdown(&w, &device, &Budget::fixed(150).seed(4));
        let get = |c: SiteClass| {
            b.per_class.iter().find(|(cc, _)| *cc == c).map(|(_, r)| r.sdc_avf()).unwrap()
        };
        assert!(get(SiteClass::FloatArith) > 0.5, "float AVF {}", get(SiteClass::FloatArith));
    }
}
