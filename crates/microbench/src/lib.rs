//! The seven synthetic micro-benchmark classes of Section V.
//!
//! | Class | Kernels | Measures |
//! |---|---|---|
//! | FMA  | HFMA FFMA DFMA | fused multiply-add pipes per precision |
//! | ADD  | HADD FADD DADD | add pipes |
//! | MUL  | HMUL FMUL DMUL | multiply pipes |
//! | MAD  | IADD IMUL IMAD | integer pipes |
//! | MMA  | HMMA FMMA      | tensor cores (Volta) |
//! | LDST | LDST           | load/store address path (ECC on) |
//! | RF   | RF             | register-file storage (ECC off) |
//!
//! Each arithmetic kernel runs a dependent chain of one operation per
//! thread over pre-defined overflow-free inputs and writes the final
//! value; errors are found by comparing with the fault-free output after
//! completion, exactly as the paper's setup does (Section V-A). The
//! masking this end-of-chain check introduces is what the paper corrects
//! for by multiplying the measured FIT by the micro-benchmark's own
//! injection-measured AVF.

use gpu_arch::{
    CmpOp, FunctionalUnit, Kernel, KernelBuilder, LaunchConfig, MemWidth, Operand, Precision, Pred,
    Reg, SpecialReg,
};
use gpu_sim::{Executed, GlobalMemory, Target};
use softfloat::F16;

fn r(i: u8) -> Reg {
    Reg(i)
}
fn imm(v: u32) -> Operand {
    Operand::Imm(v)
}

/// Operations each thread chains in the arithmetic micro-benchmarks
/// (scaled down from the paper's 1e8; the FIT math normalizes by exposure,
/// so the count only affects statistics, not the rate — Section V-B).
pub const OPS_PER_THREAD: u32 = 192;

/// Chain operations emitted per loop iteration: heavy unrolling keeps the
/// measured pipe busy instead of the loop-control logic, like the paper's
/// straight-line 1e8-operation streams.
pub const UNROLL: u32 = 16;

/// MMA operations per warp (paper uses 1e7 vs 1e8 — one decade fewer).
pub const MMA_OPS_PER_WARP: u32 = 96;

/// MMAs emitted back-to-back per loop iteration.
pub const MMA_UNROLL: u32 = 8;

/// Round-trips each LDST thread performs.
pub const LDST_MOVES: u32 = 32;

/// Registers the RF kernel patterns and checks.
pub const RF_REGS: u32 = 250;

/// A synthetic micro-benchmark: a [`Target`] plus the functional unit it
/// characterizes.
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Paper-style name: "FADD", "IMAD", "HMMA", "LDST", "RF".
    pub name: String,
    /// The unit whose FIT rate this kernel isolates (`Ldst` for LDST,
    /// `Other` for RF, which measures storage rather than a pipe).
    pub unit: FunctionalUnit,
    /// The kernel.
    pub kernel: Kernel,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Input image.
    pub memory: GlobalMemory,
    /// Output region compared against the golden run.
    pub output: (u32, u32),
}

impl Target for MicroBench {
    fn name(&self) -> &str {
        &self.name
    }
    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    fn launch(&self) -> &LaunchConfig {
        &self.launch
    }
    fn fresh_memory(&self) -> GlobalMemory {
        self.memory.clone()
    }
    fn output_matches(&self, golden: &Executed, faulty: &Executed) -> bool {
        let (o, l) = (self.output.0 as usize, self.output.1 as usize);
        golden.memory.raw()[o..o + l] == faulty.memory.raw()[o..o + l]
    }
}

/// Threads launched for arithmetic micro-benchmarks: enough warps to keep
/// every pipe of the 1-SM campaign devices busy.
const ARITH_THREADS: u32 = 512;

/// Which arithmetic micro-benchmark kernels exist for a unit.
fn arith_params(unit: FunctionalUnit) -> (Precision, &'static str) {
    use FunctionalUnit::*;
    match unit {
        Fadd => (Precision::Single, "FADD"),
        Fmul => (Precision::Single, "FMUL"),
        Ffma => (Precision::Single, "FFMA"),
        Dadd => (Precision::Double, "DADD"),
        Dmul => (Precision::Double, "DMUL"),
        Dfma => (Precision::Double, "DFMA"),
        Hadd => (Precision::Half, "HADD"),
        Hmul => (Precision::Half, "HMUL"),
        Hfma => (Precision::Half, "HFMA"),
        Iadd => (Precision::Int32, "IADD"),
        Imul => (Precision::Int32, "IMUL"),
        Imad => (Precision::Int32, "IMAD"),
        other => panic!("{other:?} is not an arithmetic micro-benchmark"),
    }
}

/// Per-thread chain seed values, overflow-free for every precision:
/// multiplications walk values close to 1, additions accumulate small
/// increments, integers wrap harmlessly.
fn seed_values(unit: FunctionalUnit, tid: u32) -> (f64, f64) {
    use FunctionalUnit::*;
    match unit {
        Fmul | Dmul | Hmul => {
            // x slightly above 1 so a long product stays in range.
            (1.0 + ((tid % 7) as f64) / 1024.0, 1.0)
        }
        // Odd multipliers are units modulo 2^32, so integer chains stay
        // bijective (a corrupted accumulator can never be multiplied into
        // oblivion — the paper's integer AVF is ~100%).
        Iadd | Imul | Imad => ((2 * (tid % 13) + 1) as f64, ((tid % 5) + 1) as f64),
        _ => (((tid % 11) as f64 + 1.0) / 256.0, ((tid % 3) as f64 + 1.0) / 16.0),
    }
}

/// Build an arithmetic micro-benchmark for `unit`.
pub fn arith(unit: FunctionalUnit) -> MicroBench {
    let (prec, name) = arith_params(unit);
    let elem = prec.size_bytes();
    let threads = ARITH_THREADS;
    let mut b = KernelBuilder::new(name);

    // params: [x_base, y_base, out_base]
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.s2r(r(2), SpecialReg::NtidX);
    b.imad(r(0), r(1).into(), r(2).into(), r(0).into()); // global id
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.ldp(r(12), 2);
    b.shl(r(3), r(0).into(), imm(prec_shift(prec)));
    b.iadd(r(4), r(3).into(), r(10).into());
    load(&mut b, prec, r(16), r(4)); // x (chain operand)
    b.iadd(r(4), r(3).into(), r(11).into());
    load(&mut b, prec, r(18), r(4)); // y / initial accumulator
                                     // acc starts at y; chain OPS times.
    mov_like(&mut b, prec, r(20), r(18));
    b.mov(r(5), imm(0));
    b.label("chain");
    for _ in 0..UNROLL {
        emit_op(&mut b, unit, r(20), r(16), r(18));
    }
    b.iadd(r(5), r(5).into(), imm(UNROLL));
    b.isetp(Pred(0), CmpOp::Lt, r(5).into(), imm(OPS_PER_THREAD));
    b.if_p(Pred(0)).bra("chain");
    b.iadd(r(4), r(3).into(), r(12).into());
    store(&mut b, prec, r(4), r(20));
    b.exit();

    let kernel = b.build().expect("arith microbench");
    let x_base = 0u32;
    let y_base = threads * elem;
    let out_base = 2 * threads * elem;
    let mut mem = GlobalMemory::new(3 * threads * elem);
    for t in 0..threads {
        let (x, y) = seed_values(unit, t);
        write_val(&mut mem, prec, x_base + t * elem, x);
        write_val(&mut mem, prec, y_base + t * elem, y);
    }
    MicroBench {
        name: name.to_string(),
        unit,
        kernel,
        launch: LaunchConfig::new(threads / 128, 128, vec![x_base, y_base, out_base]),
        memory: mem,
        output: (out_base, threads * elem),
    }
}

fn prec_shift(p: Precision) -> u32 {
    match p {
        Precision::Half => 1,
        Precision::Int32 | Precision::Single => 2,
        Precision::Double => 3,
    }
}

fn load(b: &mut KernelBuilder, p: Precision, dst: Reg, addr: Reg) {
    b.ldg(p.mem_width(), dst, addr, 0);
}

fn store(b: &mut KernelBuilder, p: Precision, addr: Reg, val: Reg) {
    b.stg(p.mem_width(), addr, 0, val);
}

fn mov_like(b: &mut KernelBuilder, p: Precision, dst: Reg, src: Reg) {
    b.mov(dst, src.into());
    if p == Precision::Double {
        b.mov(dst.pair_hi(), src.pair_hi().into());
    }
}

fn write_val(mem: &mut GlobalMemory, p: Precision, addr: u32, v: f64) {
    match p {
        Precision::Int32 => mem.write_u32_host(addr, v as i32 as u32),
        Precision::Half => mem.write_u16_host(addr, F16::from_f64(v).to_bits()),
        Precision::Single => mem.write_f32_host(addr, v as f32),
        Precision::Double => mem.write_f64_host(addr, v),
    }
    .expect("microbench operand buffer sized for every lane");
}

/// The chained operation: `acc = acc OP x` (FMA uses `acc = x*y + acc`).
fn emit_op(b: &mut KernelBuilder, unit: FunctionalUnit, acc: Reg, x: Reg, y: Reg) {
    use FunctionalUnit::*;
    match unit {
        Fadd => b.fadd(acc, acc.into(), x.into()),
        Fmul => b.fmul(acc, acc.into(), x.into()),
        Ffma => b.ffma(acc, x.into(), y.into(), acc.into()),
        Dadd => b.dadd(acc, acc.into(), x.into()),
        Dmul => b.dmul(acc, acc.into(), x.into()),
        Dfma => b.dfma(acc, x.into(), y.into(), acc.into()),
        Hadd => b.hadd(acc, acc.into(), x.into()),
        Hmul => b.hmul(acc, acc.into(), x.into()),
        Hfma => b.hfma(acc, x.into(), y.into(), acc.into()),
        Iadd => b.iadd(acc, acc.into(), x.into()),
        Imul => b.imul(acc, acc.into(), x.into()),
        Imad => b.imad(acc, x.into(), y.into(), acc.into()),
        other => panic!("{other:?} has no chained op"),
    };
}

/// The tensor-core micro-benchmark: each warp repeats `D = A*B + D`.
/// `half_accumulate` selects HMMA vs FMMA (FMMA casts binary32 inputs).
pub fn mma(half_accumulate: bool) -> MicroBench {
    let name = if half_accumulate { "HMMA" } else { "FMMA" };
    let prec = if half_accumulate { Precision::Half } else { Precision::Single };
    let elem = prec.size_bytes();
    let n = 16u32;
    let warps = 8u32;
    let mut b = KernelBuilder::new(name);

    // params: [a_base, b_base, d_base]; every warp uses the same A/B but
    // its own D region.
    b.s2r(r(0), SpecialReg::LaneId);
    b.s2r(r(2), SpecialReg::CtaidX); // warp index (1 warp per block)
    b.ldp(r(50), 0);
    b.ldp(r(51), 1);
    b.ldp(r(52), 2);

    // Load the A and B fragments once (packed f16 pairs in 10..14, 14..18).
    for j in 0..8u32 {
        b.imad(r(5), r(0).into(), imm(8), imm(j));
        b.shl(r(6), r(5).into(), imm(prec_shift(prec)));
        b.iadd(r(7), r(6).into(), r(50).into());
        if half_accumulate {
            b.ldg(MemWidth::W16, r(9), r(7), 0);
        } else {
            b.ldg(MemWidth::W32, r(9), r(7), 0);
            b.f2h(r(9), r(9).into());
        }
        let a_reg = 10 + (j / 2) as u8;
        if j % 2 == 0 {
            b.mov(r(a_reg), r(9).into());
        } else {
            b.shl(r(9), r(9).into(), imm(16));
            b.or(r(a_reg), r(a_reg).into(), r(9).into());
        }
        b.iadd(r(7), r(6).into(), r(51).into());
        if half_accumulate {
            b.ldg(MemWidth::W16, r(9), r(7), 0);
        } else {
            b.ldg(MemWidth::W32, r(9), r(7), 0);
            b.f2h(r(9), r(9).into());
        }
        let b_reg = 14 + (j / 2) as u8;
        if j % 2 == 0 {
            b.mov(r(b_reg), r(9).into());
        } else {
            b.shl(r(9), r(9).into(), imm(16));
            b.or(r(b_reg), r(b_reg).into(), r(9).into());
        }
    }
    // Zero accumulator.
    if half_accumulate {
        for j in 0..4u8 {
            b.mov(r(18 + j), imm(0));
        }
    } else {
        for j in 0..8u8 {
            b.mov(r(18 + j), Operand::imm_f32(0.0));
        }
    }
    // Repeat the MMA.
    b.mov(r(4), imm(0));
    b.label("mmaloop");
    for _ in 0..MMA_UNROLL {
        if half_accumulate {
            b.hmma(r(10), r(14), r(18));
        } else {
            b.fmma(r(10), r(14), r(18));
        }
    }
    b.iadd(r(4), r(4).into(), imm(MMA_UNROLL));
    b.isetp(Pred(0), CmpOp::Lt, r(4).into(), imm(MMA_OPS_PER_WARP));
    b.if_p(Pred(0)).bra("mmaloop");
    // Store D to this warp's output region.
    for j in 0..8u32 {
        b.imad(r(5), r(0).into(), imm(8), imm(j));
        // output element index = warp*256 + idx
        b.imad(r(5), r(2).into(), imm(256), r(5).into());
        b.shl(r(6), r(5).into(), imm(prec_shift(prec)));
        b.iadd(r(7), r(6).into(), r(52).into());
        if half_accumulate {
            let c_reg = 18 + (j / 2) as u8;
            if j % 2 == 0 {
                b.and(r(9), r(c_reg).into(), imm(0xFFFF));
            } else {
                b.shr(r(9), r(c_reg).into(), imm(16));
            }
            b.stg(MemWidth::W16, r(7), 0, r(9));
        } else {
            b.stg(MemWidth::W32, r(7), 0, r(18 + j as u8));
        }
    }
    b.exit();

    let kernel = b.build().expect("mma microbench");
    let a_base = 0u32;
    let b_base = n * n * elem;
    let d_base = 2 * n * n * elem;
    let out_len = warps * 256 * elem;
    let mut mem = GlobalMemory::new(d_base + out_len);
    // A near-identity-scale inputs: products in [-0.25, 0.25] so 24 chained
    // MMAs cannot overflow binary16.
    for i in 0..n {
        for j in 0..n {
            let va = (((i * 3 + j) % 5) as f64 - 2.0) / 32.0;
            let vb = (((i * 7 + j * 5) % 9) as f64 - 4.0) / 64.0;
            write_val(&mut mem, prec, a_base + (i * n + j) * elem, va);
            write_val(&mut mem, prec, b_base + (i * n + j) * elem, vb);
        }
    }
    MicroBench {
        name: name.to_string(),
        unit: if half_accumulate { FunctionalUnit::Hmma } else { FunctionalUnit::Fmma },
        kernel,
        launch: LaunchConfig::new(warps, 32, vec![a_base, b_base, d_base]),
        memory: mem,
        output: (d_base, out_len),
    }
}

/// The LDST micro-benchmark: threads copy a patterned region between two
/// global buffers repeatedly; the critical operand is the address, so
/// most faults become DUEs ("an incorrect address can either be valid or
/// invalid... the chances of invalid addresses is higher", Section V-B).
pub fn ldst() -> MicroBench {
    let threads = 512u32;
    let mut b = KernelBuilder::new("LDST");

    // params: [src_base, dst_base]
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.s2r(r(2), SpecialReg::NtidX);
    b.imad(r(0), r(1).into(), r(2).into(), r(0).into());
    b.ldp(r(10), 0);
    b.ldp(r(11), 1);
    b.shl(r(3), r(0).into(), imm(2));
    b.iadd(r(4), r(3).into(), r(10).into()); // src addr
    b.iadd(r(5), r(3).into(), r(11).into()); // dst addr
    b.mov(r(6), imm(0));
    b.label("moveloop");
    // Ping-pong the word: src -> dst, dst -> src, preserving the pattern.
    b.ldg(MemWidth::W32, r(7), r(4), 0);
    b.stg(MemWidth::W32, r(5), 0, r(7));
    b.ldg(MemWidth::W32, r(8), r(5), 0);
    b.stg(MemWidth::W32, r(4), 0, r(8));
    b.iadd(r(6), r(6).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Lt, r(6).into(), imm(LDST_MOVES));
    b.if_p(Pred(0)).bra("moveloop");
    b.exit();

    let kernel = b.build().expect("ldst microbench");
    let src_base = 0u32;
    let dst_base = 4 * threads;
    let mut mem = GlobalMemory::new(8 * threads);
    for t in 0..threads {
        mem.write_u32_host(src_base + 4 * t, 0xA5A5_0000 | t)
            .expect("shuffle source buffer covers every lane");
    }
    MicroBench {
        name: "LDST".to_string(),
        unit: FunctionalUnit::Ldst,
        kernel,
        launch: LaunchConfig::new(threads / 128, 128, vec![src_base, dst_base]),
        memory: mem,
        // Both buffers must carry the pattern at the end.
        output: (0, 8 * threads),
    }
}

/// The register-file micro-benchmark: write a known pattern into
/// [`RF_REGS`] registers, idle through a delay loop (the "exposure
/// time"), then XOR-reduce every register into a signature. Run with ECC
/// disabled, as in the paper.
pub fn register_file() -> MicroBench {
    let threads = 256u32;
    let delay = 256u32;
    let mut b = KernelBuilder::new("RF");
    b.reserve_regs(255);

    // params: [out_base]
    b.s2r(r(0), SpecialReg::TidX);
    b.s2r(r(1), SpecialReg::CtaidX);
    b.s2r(r(2), SpecialReg::NtidX);
    b.imad(r(0), r(1).into(), r(2).into(), r(0).into());
    b.ldp(r(1), 0);
    b.shl(r(2), r(0).into(), imm(2));
    b.iadd(r(1), r(1).into(), r(2).into()); // out addr
                                            // Pattern fill: registers 4..4+RF_REGS get tid-dependent patterns.
    for i in 0..RF_REGS {
        let reg = 4 + i as u8;
        // pattern = rotate(0x5A5A_A5A5, i) ^ tid — emitted as XOR of an
        // immediate with the global id.
        let pat = 0x5A5A_A5A5u32.rotate_left(i % 32);
        b.xor(r(reg), r(0).into(), imm(pat));
    }
    // Exposure delay: a tight loop touching only r2/r3.
    b.mov(r(2), imm(0));
    b.label("delay");
    b.iadd(r(2), r(2).into(), imm(1));
    b.isetp(Pred(0), CmpOp::Lt, r(2).into(), imm(delay));
    b.if_p(Pred(0)).bra("delay");
    // Read back: XOR-reduce into r3.
    b.mov(r(3), imm(0));
    for i in 0..RF_REGS {
        let reg = 4 + i as u8;
        b.xor(r(3), r(3).into(), r(reg).into());
    }
    b.stg(MemWidth::W32, r(1), 0, r(3));
    b.exit();

    let kernel = b.build().expect("rf microbench");
    let mem = GlobalMemory::new(4 * threads);
    MicroBench {
        name: "RF".to_string(),
        unit: FunctionalUnit::Other,
        kernel,
        launch: LaunchConfig::new(threads / 128, 128, vec![0]),
        memory: mem,
        output: (0, 4 * threads),
    }
}

/// All micro-benchmarks that exist for a device: its spec's `bench_units`
/// table (the Figure 3 x axis — float + int on Kepler, all precisions +
/// tensor cores on Volta/Ampere) plus the LDST and RF exposures every
/// target gets.
pub fn suite(device: &gpu_arch::DeviceModel) -> Vec<MicroBench> {
    let mut out = Vec::new();
    for &u in &device.caps.bench_units {
        out.push(match u {
            FunctionalUnit::Hmma => mma(true),
            FunctionalUnit::Fmma => mma(false),
            _ => arith(u),
        });
    }
    out.push(ldst());
    out.push(register_file());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::DeviceModel;
    use gpu_sim::ExecStatus;

    #[test]
    fn all_arith_benches_complete() {
        let volta = DeviceModel::named("v100-sim");
        for mb in suite(&volta) {
            let out = mb.execute_golden(&volta);
            assert_eq!(out.status, ExecStatus::Completed, "{}", mb.name);
            assert!(mb.output_matches(&out, &out));
        }
    }

    #[test]
    fn kepler_suite_has_no_half_or_mma() {
        let names: Vec<String> =
            suite(&DeviceModel::named("k40c")).iter().map(|m| m.name.clone()).collect();
        assert!(!names.iter().any(|n| n.starts_with('H')));
        assert!(!names.iter().any(|n| n.contains("MMA")));
        assert!(names.contains(&"LDST".to_string()));
        assert!(names.contains(&"RF".to_string()));
    }

    #[test]
    fn volta_suite_matches_figure3_axis() {
        let names: Vec<String> =
            suite(&DeviceModel::named("v100")).iter().map(|m| m.name.clone()).collect();
        for expect in [
            "HADD", "HMUL", "HFMA", "FADD", "FMUL", "FFMA", "DADD", "DMUL", "DFMA", "IADD", "IMUL",
            "IMAD", "HMMA", "FMMA", "LDST", "RF",
        ] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
    }

    #[test]
    fn iadd_chain_is_fully_unmasked() {
        // A bit flipped in the integer accumulator propagates to the
        // output with probability 1 (paper: integer AVF is 100%).
        use gpu_sim::{BitFlip, FaultPlan, RunOptions, SiteClass};
        let device = DeviceModel::named("k40c-sim");
        let mb = arith(FunctionalUnit::Iadd);
        let golden = mb.execute_golden(&device);
        for nth in [0u64, 100, 5000] {
            let opts = RunOptions::trial(FaultPlan::InstructionOutput {
                nth,
                site: SiteClass::Unit(FunctionalUnit::Iadd),
                flip: BitFlip::single(7),
            });
            let out = mb.execute(&device, &opts);
            assert_eq!(out.status, ExecStatus::Completed);
            assert!(out.fault_triggered);
            assert!(!mb.output_matches(&golden, &out), "nth={nth} was masked");
        }
    }

    #[test]
    fn rf_bench_uses_full_register_file() {
        let mb = register_file();
        assert_eq!(mb.kernel.regs_per_thread, 255);
    }

    #[test]
    fn ldst_bench_roundtrip_preserves_pattern() {
        let device = DeviceModel::named("v100-sim");
        let mb = ldst();
        let out = mb.execute_golden(&device);
        assert_eq!(out.status, ExecStatus::Completed);
        // dst now carries the pattern too.
        assert_eq!(out.memory.read_u32_host(4 * 512 + 4 * 3).unwrap(), 0xA5A5_0003);
    }

    #[test]
    fn mma_bench_stresses_tensor_unit() {
        let device = DeviceModel::named("v100-sim");
        for half in [true, false] {
            let mb = mma(half);
            let out = mb.execute_golden(&device);
            assert_eq!(out.status, ExecStatus::Completed, "{}", mb.name);
            let unit = if half { FunctionalUnit::Hmma } else { FunctionalUnit::Fmma };
            assert!(out.counts.unit(unit) >= (MMA_OPS_PER_WARP * 8) as u64);
        }
    }
}
