//! Software implementation of IEEE 754 binary16 ("half precision") plus
//! bit-level utilities shared by the simulator.
//!
//! The paper evaluates half-precision functional units (HADD/HMUL/HFMA and
//! the HMMA tensor-core path) on Volta. Rust has no native `f16`, and this
//! reproduction deliberately implements its own binary16 so that bit-flips
//! injected into FP16 register values propagate with bit-exact IEEE
//! semantics (rounding, subnormals, infinities, NaN) rather than through an
//! opaque external crate.
//!
//! Arithmetic follows the same model as NVIDIA's FP16 pipes: operands are
//! promoted, the operation is performed in higher precision, and the result
//! is rounded back to binary16 with round-to-nearest-even. For `add`, `mul`
//! and `fma` a single rounding from an exact (f64) intermediate matches a
//! correctly-rounded binary16 unit.

mod f16;

pub use f16::F16;

/// Flip bit `bit` (0 = LSB) of a 32-bit word.
#[inline]
pub fn flip_bit_u32(word: u32, bit: u32) -> u32 {
    word ^ (1u32 << (bit & 31))
}

/// Flip bit `bit` (0 = LSB) of a 64-bit word.
#[inline]
pub fn flip_bit_u64(word: u64, bit: u32) -> u64 {
    word ^ (1u64 << (bit & 63))
}

/// Flip bit `bit` of an `f32` value through its bit representation.
#[inline]
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    f32::from_bits(flip_bit_u32(value.to_bits(), bit))
}

/// Flip bit `bit` of an `f64` value through its bit representation.
#[inline]
pub fn flip_bit_f64(value: f64, bit: u32) -> f64 {
    f64::from_bits(flip_bit_u64(value.to_bits(), bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_u32_roundtrips() {
        for bit in 0..32 {
            let v = 0xDEAD_BEEFu32;
            assert_eq!(flip_bit_u32(flip_bit_u32(v, bit), bit), v);
            assert_ne!(flip_bit_u32(v, bit), v);
        }
    }

    #[test]
    fn flip_u64_roundtrips() {
        for bit in 0..64 {
            let v = 0x0123_4567_89AB_CDEFu64;
            assert_eq!(flip_bit_u64(flip_bit_u64(v, bit), bit), v);
            assert_ne!(flip_bit_u64(v, bit), v);
        }
    }

    #[test]
    fn flip_f32_changes_bits_not_identity() {
        let x = 1.5f32;
        let y = flip_bit_f32(x, 22); // flip a mantissa bit
        assert_ne!(x.to_bits(), y.to_bits());
        assert_eq!(flip_bit_f32(y, 22).to_bits(), x.to_bits());
    }

    #[test]
    fn flip_f64_sign_bit() {
        let x = 2.0f64;
        assert_eq!(flip_bit_f64(x, 63), -2.0f64);
    }

    #[test]
    fn flip_bit_index_wraps() {
        // Out-of-range bit indices wrap instead of panicking: fault models
        // sometimes draw a bit index wider than the operand.
        assert_eq!(flip_bit_u32(1, 32), 0);
        assert_eq!(flip_bit_u64(1, 64), 0);
    }
}
