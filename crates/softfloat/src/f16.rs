//! IEEE 754 binary16 implemented on a `u16` bit pattern.
//!
//! Layout: 1 sign bit | 5 exponent bits (bias 15) | 10 mantissa bits.
//! Conversions implement round-to-nearest-even; arithmetic promotes to `f64`
//! (exact for binary16 add/mul/fma) and rounds once on the way back, which
//! is bit-identical to a correctly rounded binary16 unit.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 value stored as its raw bit pattern.
///
/// Arithmetic is exposed as named methods (`add`, `mul`, `fma`, ...)
/// rather than operator overloads on purpose: at a fault-injection site
/// you want the rounding semantics spelled out, not hidden behind `+`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;
const EXP_BIAS: i32 = 15;

#[allow(clippy::should_implement_trait)] // named methods keep rounding explicit
impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve a NaN payload bit so NaNs stay NaNs.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent in f32 terms.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows binary16 range: round to infinity.
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal range. 13 mantissa bits are dropped.
            let half_exp = ((unbiased + EXP_BIAS) as u16) << 10;
            let half_man = (man >> 13) as u16;
            let rest = man & 0x1FFF;
            let mut out = sign | half_exp | half_man;
            // Round to nearest, ties to even.
            if rest > 0x1000 || (rest == 0x1000 && (half_man & 1) == 1) {
                out = out.wrapping_add(1); // may carry into the exponent: correct
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal result. Add the implicit leading one and shift.
            let man = man | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_man = (man >> shift) as u16;
            let rest_mask = (1u32 << shift) - 1;
            let rest = man & rest_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_man;
            if rest > halfway || (rest == halfway && (half_man & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflows to zero.
        F16(sign)
    }

    /// Convert an `f64` to binary16 (via a correctly-rounded double rounding
    /// guard: f64 -> f32 is exact-enough only when the f32 is not a
    /// round-to-even boundary; to stay correctly rounded we convert through
    /// the same algorithm operating on f64 bits).
    pub fn from_f64(value: f64) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & MAN_MASK))
            };
        }

        let unbiased = exp - 1023;
        if unbiased > 15 {
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            let half_exp = ((unbiased + EXP_BIAS) as u16) << 10;
            let half_man = (man >> 42) as u16;
            let rest = man & 0x3FF_FFFF_FFFF;
            let halfway = 0x200_0000_0000u64;
            let mut out = sign | half_exp | half_man;
            if rest > halfway || (rest == halfway && (half_man & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        if unbiased >= -25 {
            let man = man | 0x0010_0000_0000_0000;
            let shift = (-14 - unbiased) as u32 + 42;
            let half_man = (man >> shift) as u16;
            let rest_mask = (1u64 << shift) - 1;
            let rest = man & rest_mask;
            let halfway = 1u64 << (shift - 1);
            let mut out = sign | half_man;
            if rest > halfway || (rest == halfway && (half_man & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        F16(sign)
    }

    /// Widen to `f32` (exact: every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;

        if exp == 0x1F {
            // Inf / NaN
            let f32_man = man << 13;
            return f32::from_bits(sign | 0x7F80_0000 | f32_man);
        }
        if exp == 0 {
            if man == 0 {
                return f32::from_bits(sign); // signed zero
            }
            // Subnormal: value = man * 2^-24. Normalize around the leading
            // bit at position p, giving 1.fraction * 2^(p-24).
            let p = 31 - man.leading_zeros(); // 0..=9
            let exp = 127 - 24 + p;
            let man23 = (man << (23 - p)) & 0x007F_FFFF;
            return f32::from_bits(sign | (exp << 23) | man23);
        }
        let f32_exp = exp + 127 - EXP_BIAS as u32;
        f32::from_bits(sign | (f32_exp << 23) | (man << 13))
    }

    /// Widen to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if the value is +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True if the value is finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True if the value is subnormal.
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// True if the value is +0 or -0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Sign bit set (note: true for -0 and negative NaNs).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Correctly rounded addition.
    #[inline]
    pub fn add(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() + rhs.to_f64())
    }

    /// Correctly rounded subtraction.
    #[inline]
    pub fn sub(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() - rhs.to_f64())
    }

    /// Correctly rounded multiplication.
    #[inline]
    pub fn mul(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() * rhs.to_f64())
    }

    /// Division (round-to-nearest via an f64 intermediate; the double
    /// rounding is harmless because an f64 quotient of binary16 inputs has
    /// more than twice the precision of binary16 plus a guard).
    #[inline]
    pub fn div(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() / rhs.to_f64())
    }

    /// Fused multiply-add: `self * a + b` with a single final rounding, as
    /// performed by HFMA hardware. The f64 product and sum of binary16
    /// operands are exact, so one rounding at the end is correct.
    #[inline]
    pub fn fma(self, a: F16, b: F16) -> F16 {
        F16::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }

    /// Negation (flips the sign bit, like hardware).
    #[inline]
    pub fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// IEEE total-order-ish comparison matching `f32` partial order.
    pub fn partial_cmp(self, rhs: F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&rhs.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} / 0x{:04x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn f32_roundtrip_exact_for_all_half_values() {
        // Every one of the 65536 bit patterns must survive f16 -> f32 -> f16.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "NaN lost at bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "roundtrip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; RNE keeps 1.0.
        let v = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_bits(), F16::ONE.to_bits());
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks even (1+2^-9).
        let v = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(v).to_bits(), 0x3C02);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_sign_negative());
        // 65504 is the max; 65520 rounds to infinity (halfway, ties away in
        // magnitude beyond max exponent).
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(F16::from_f32(65503.0).to_bits(), F16::MAX.to_bits());
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        assert!(F16::from_f32(1e-10).is_zero());
        let sub = F16::from_f32(2.0f32.powi(-24));
        assert!(sub.is_subnormal());
        assert_eq!(sub.to_bits(), 1);
        // Halfway between 0 and the smallest subnormal rounds to even (0).
        assert!(F16::from_f32(2.0f32.powi(-25)).is_zero());
    }

    #[test]
    fn arithmetic_basics() {
        let two = F16::from_f32(2.0);
        let three = F16::from_f32(3.0);
        assert_eq!(two.add(three).to_f32(), 5.0);
        assert_eq!(three.sub(two).to_f32(), 1.0);
        assert_eq!(two.mul(three).to_f32(), 6.0);
        assert_eq!(three.div(two).to_f32(), 1.5);
        assert_eq!(two.fma(three, F16::ONE).to_f32(), 7.0);
        assert_eq!(two.neg().to_f32(), -2.0);
        assert_eq!(two.neg().abs().to_f32(), 2.0);
    }

    #[test]
    fn arithmetic_saturates_to_inf() {
        let big = F16::MAX;
        assert!(big.add(big).is_infinite());
        assert!(big.mul(big).is_infinite());
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::NAN.add(F16::ONE).is_nan());
        assert!(F16::NAN.mul(F16::ONE).is_nan());
        assert!(F16::INFINITY.sub(F16::INFINITY).is_nan());
        assert!(F16::ZERO.mul(F16::INFINITY).is_nan());
    }

    #[test]
    fn from_f64_matches_from_f32_on_representables() {
        for bits in (0..=u16::MAX).step_by(7) {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let via64 = F16::from_f64(h.to_f64());
            assert_eq!(via64.to_bits(), bits, "f64 path diverged at {bits:#06x}");
        }
    }

    #[test]
    fn from_f64_avoids_double_rounding() {
        // Pick a value where f64 -> f32 -> f16 would double-round:
        // x = 1 + 2^-11 + 2^-40 is just above the f16 tie; correct answer is
        // 1 + 2^-10, while rounding through f32 could also give that -- use
        // the dedicated f64 path and check against exact reasoning.
        let x = 1.0f64 + 2.0f64.powi(-11) + 2.0f64.powi(-40);
        assert_eq!(F16::from_f64(x).to_bits(), 0x3C01);
    }

    #[test]
    fn fma_single_rounding() {
        // a*b+c where the product needs >10 bits: (1+2^-10)^2 = 1+2^-9+2^-20.
        // FMA rounds once: result is 1+2^-9 (the 2^-20 tail is below the tie).
        let a = F16::from_bits(0x3C01); // 1+2^-10
        let r = a.fma(a, F16::ZERO);
        assert_eq!(r.to_bits(), 0x3C02); // 1+2^-9
    }

    #[test]
    fn comparison_matches_f32() {
        let vals = [-2.0f32, -0.5, 0.0, 0.5, 1.0, 100.0];
        for &a in &vals {
            for &b in &vals {
                let ha = F16::from_f32(a);
                let hb = F16::from_f32(b);
                assert_eq!(ha.partial_cmp(hb), a.partial_cmp(&b));
            }
        }
        assert_eq!(F16::NAN.partial_cmp(F16::ONE), None);
    }
}
