//! Property-based tests for the binary16 implementation.

use proptest::prelude::*;
use softfloat::F16;

proptest! {
    /// Every non-NaN bit pattern survives f16 -> f32 -> f16 exactly.
    #[test]
    fn roundtrip_through_f32(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// Conversion from f32 is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn conversion_is_monotone(a in -1e5f32..1e5, b in -1e5f32..1e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hl, hh) = (F16::from_f32(lo), F16::from_f32(hi));
        prop_assert!(hl.partial_cmp(hh) != Some(std::cmp::Ordering::Greater),
            "f16({lo}) > f16({hi})");
    }

    /// Addition commutes.
    #[test]
    fn addition_commutes(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!(x.add(y).to_bits(), y.add(x).to_bits());
    }

    /// Multiplication commutes.
    #[test]
    fn multiplication_commutes(a in -200f32..200.0, b in -200f32..200.0) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!(x.mul(y).to_bits(), y.mul(x).to_bits());
    }

    /// x * 1 == x and x + 0 == x for finite x (modulo -0 normalization).
    #[test]
    fn identities(bits in any::<u16>()) {
        let x = F16::from_bits(bits);
        prop_assume!(x.is_finite());
        prop_assert_eq!(x.mul(F16::ONE).to_f32(), x.to_f32());
        let sum = x.add(F16::ZERO).to_f32();
        prop_assert_eq!(sum, x.to_f32());
    }

    /// fma(a, b, 0) == mul(a, b): with a zero addend the single rounding
    /// coincides with the product rounding.
    #[test]
    fn fma_with_zero_is_mul(a in -200f32..200.0, b in -200f32..200.0) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        let fma = x.fma(y, F16::ZERO);
        let mul = x.mul(y);
        prop_assert_eq!(fma.to_f32().to_bits(), mul.to_f32().to_bits());
    }

    /// Negation is involutive and flips the sign of finite values.
    #[test]
    fn negation_involutive(bits in any::<u16>()) {
        let x = F16::from_bits(bits);
        prop_assert_eq!(x.neg().neg().to_bits(), bits);
    }

    /// f16 ordering agrees with f64 ordering of the widened values.
    #[test]
    fn ordering_matches_f64(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        let wide = x.to_f64().partial_cmp(&y.to_f64());
        prop_assert_eq!(x.partial_cmp(y), wide);
    }

    /// Widening then narrowing from f64 is exact for every f16 value.
    #[test]
    fn f64_roundtrip(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f64(h.to_f64()).to_bits(), bits);
    }

    /// The result of from_f32 is always within half a ULP: quantizing
    /// twice is idempotent.
    #[test]
    fn quantization_idempotent(v in -7e4f32..7e4) {
        let once = F16::from_f32(v);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }
}
