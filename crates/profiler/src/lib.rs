//! Kernel profiler: the NVPROF / Nsight-Compute analogue.
//!
//! Produces the metrics the paper's methodology consumes:
//!
//! * **Table I** per code: static shared memory, registers per thread,
//!   executed IPC, achieved occupancy;
//! * **Figure 1** per code: the dynamic instruction mix split into
//!   FMA / MUL / ADD / INT / MMA / LDST / OTHERS;
//! * the φ factor of Equation 4 (`achieved occupancy x IPC`) that folds
//!   GPU parallelism management into the FIT prediction;
//! * per-functional-unit dynamic instruction fractions `f(INST_i)` of
//!   Equation 2, and per-unit *utilization* (busy fraction of the unit's
//!   lanes), which the beam engine uses to decide how often a strike on a
//!   unit hits in-flight work.

use gpu_arch::{DeviceModel, FunctionalUnit, MixCategory, WARP_SIZE};
use gpu_sim::{Executed, Target};

/// Profile of one kernel execution (one Table I row + one Figure 1 bar).
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Workload name (paper style).
    pub name: String,
    /// Static shared memory per block, bytes (Table I "SHARED").
    pub shared_bytes: u32,
    /// Registers per thread (Table I "RF").
    pub regs_per_thread: u16,
    /// Executed warp instructions per cycle per SM (Table I "IPC").
    pub ipc: f64,
    /// Achieved occupancy in `[0, 1]` (Table I "Occupancy").
    pub occupancy: f64,
    /// Equation 4's φ = occupancy x IPC.
    pub phi: f64,
    /// Total dynamic (thread) instructions.
    pub total_instructions: u64,
    /// Dynamic instruction count per functional unit. The engine tallies
    /// these from the predecode tables (`gpu_arch::decode::InstrMeta`),
    /// the same classification the injectors sample from.
    pub unit_counts: [u64; FunctionalUnit::COUNT],
    /// Figure 1 fractions per mix category, from the same predecode
    /// tables as [`KernelProfile::unit_counts`].
    pub mix_fractions: [f64; MixCategory::COUNT],
    /// Modeled kernel wall time in seconds (drives beam fluence).
    pub seconds: f64,
    /// Modeled cycles.
    pub cycles: f64,
    /// Static ACE fraction: of the destination bits the kernel's
    /// (reachable, scalar GPR-writing) instructions produce, the fraction
    /// some path may observe ([`sass_analysis::StaticMasks`]). The static
    /// analogue of the dynamically-measured AVF, reported beside it in
    /// the prediction tables.
    pub static_ace: f64,
    /// Static SDC upper bound: the fraction of GPR-writer site bits whose
    /// value-flow verdict admits an SDC (`StoreReaching` or `Unknown` —
    /// [`sass_analysis::VerdictSummary::sdc_upper`]). A campaign's SDC
    /// AVF provably cannot exceed it.
    pub static_sdc_upper: f64,
    /// Static DUE upper bound: site-bit fraction whose verdict admits a
    /// DUE (proven-DUE bits, `AddressReaching`/`ControlReaching`, or
    /// `Unknown` — [`sass_analysis::VerdictSummary::due_upper`]).
    pub static_due_upper: f64,
}

impl KernelProfile {
    /// Extract a profile from a finished execution. `launch` feeds the
    /// launch-aware static verdict pass (thread-id ranges, parameter
    /// values, allocation bounds); the result is memoized per kernel
    /// digest so repeated profiling is cheap.
    pub fn from_execution(
        name: impl Into<String>,
        target_kernel: &gpu_arch::Kernel,
        launch: &gpu_arch::LaunchConfig,
        out: &Executed,
    ) -> Self {
        let ctx = sass_analysis::AnalysisContext::for_launch(launch, out.memory.len() as u64);
        let summary = sass_analysis::verdict_summary(target_kernel, &ctx);
        KernelProfile {
            name: name.into(),
            shared_bytes: target_kernel.shared_bytes,
            regs_per_thread: target_kernel.regs_per_thread,
            ipc: out.timing.ipc,
            occupancy: out.timing.achieved_occupancy,
            phi: out.timing.achieved_occupancy * out.timing.ipc,
            total_instructions: out.counts.total,
            unit_counts: out.counts.per_unit,
            mix_fractions: out.counts.mix_fractions(),
            seconds: out.timing.seconds,
            cycles: out.timing.cycles,
            static_ace: sass_analysis::static_ace_fraction(target_kernel),
            static_sdc_upper: summary.sdc_upper(),
            static_due_upper: summary.due_upper(),
        }
    }

    /// Fraction of dynamic instructions executed on `unit` —
    /// `f(INST_i)` in Equation 2.
    pub fn unit_fraction(&self, unit: FunctionalUnit) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        self.unit_counts[unit.index()] as f64 / self.total_instructions as f64
    }

    /// Dynamic count for one unit.
    pub fn unit_count(&self, unit: FunctionalUnit) -> u64 {
        self.unit_counts[unit.index()]
    }

    /// Busy fraction of `unit`'s lanes over the kernel's runtime on
    /// `device`: warp-issues to the unit, times the cycles each issue
    /// occupies the unit, over total lane-cycles available.
    ///
    /// The beam engine multiplies each unit's cross-section by this
    /// utilization: a strike on an idle pipe is harmless.
    pub fn unit_utilization(&self, device: &DeviceModel, unit: FunctionalUnit) -> f64 {
        let lanes = device.lanes_for(unit);
        if lanes == 0 || self.cycles <= 0.0 {
            return 0.0;
        }
        let count = self.unit_counts[unit.index()] as f64;
        // Thread-instructions already measure lane-cycles of work for
        // scalar units; MMA counts are per warp and occupy the tensor
        // cores for ~4 cycles.
        let lane_cycles = if matches!(unit, FunctionalUnit::Hmma | FunctionalUnit::Fmma) {
            count * 4.0 * WARP_SIZE as f64
        } else {
            count
        };
        (lane_cycles / (self.cycles * (lanes * device.sms) as f64)).clamp(0.0, 1.0)
    }

    /// Figure 1 fraction for one category.
    pub fn mix(&self, cat: MixCategory) -> f64 {
        self.mix_fractions[cat.index()]
    }

    /// Export the profile's headline quantities — φ (Equation 4's
    /// utilization-weighted IPC), IPC, achieved occupancy, modeled
    /// runtime — as gauges on `metrics`, prefixed `profile.<name>.`.
    pub fn export_metrics(&self, metrics: &obs::MetricsRegistry) {
        let prefix = format!("profile.{}", self.name);
        metrics.gauge(&format!("{prefix}.phi")).set(self.phi);
        metrics.gauge(&format!("{prefix}.ipc")).set(self.ipc);
        metrics.gauge(&format!("{prefix}.occupancy")).set(self.occupancy);
        metrics.gauge(&format!("{prefix}.seconds")).set(self.seconds);
        metrics.gauge(&format!("{prefix}.cycles")).set(self.cycles);
        metrics.gauge(&format!("{prefix}.instructions")).set(self.total_instructions as f64);
        metrics.gauge(&format!("{prefix}.static_ace")).set(self.static_ace);
        metrics.gauge(&format!("{prefix}.static_sdc_upper")).set(self.static_sdc_upper);
        metrics.gauge(&format!("{prefix}.static_due_upper")).set(self.static_due_upper);
    }
}

/// Run the target fault-free on `device` and profile it.
///
/// # Panics
/// Panics if the golden run does not complete — a workload that DUEs
/// fault-free is a bug.
pub fn profile<T: Target + ?Sized>(target: &T, device: &DeviceModel) -> KernelProfile {
    let out = target.execute_golden(device);
    assert!(out.status.completed(), "golden run of {} failed: {:?}", target.name(), out.status);
    KernelProfile::from_execution(target.name(), target.kernel(), target.launch(), &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::{CodeGen, Precision};
    use workloads::{build, Benchmark, Scale};

    #[test]
    fn mxm_profile_is_fma_dominated() {
        let device = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small);
        let p = profile(&w, &device);
        assert!(p.mix(MixCategory::Fma) > 0.1, "fma={}", p.mix(MixCategory::Fma));
        assert!(p.mix(MixCategory::Ldst) > 0.1);
        assert!(p.unit_fraction(FunctionalUnit::Ffma) > 0.1);
        assert!((p.phi - p.ipc * p.occupancy).abs() < 1e-12);
        let s: f64 = p.mix_fractions.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "mix sums to {s}");
        // Hand-built kernels keep most produced bits live; a zero or full
        // static ACE would mean the analysis collapsed.
        assert!(p.static_ace > 0.5 && p.static_ace <= 1.0, "static_ace={}", p.static_ace);
        // The verdict-lattice bounds are fractions of site bits; both must
        // be nonzero (stores exist, addresses are corruptible) and valid.
        assert!(
            p.static_sdc_upper > 0.0 && p.static_sdc_upper <= 1.0,
            "static_sdc_upper={}",
            p.static_sdc_upper
        );
        assert!(
            p.static_due_upper > 0.0 && p.static_due_upper <= 1.0,
            "static_due_upper={}",
            p.static_due_upper
        );
    }

    #[test]
    fn integer_codes_have_int_heavy_mix() {
        let device = DeviceModel::named("k40c-sim");
        let w = build(Benchmark::Mergesort, Precision::Int32, CodeGen::Cuda10, Scale::Tiny);
        let p = profile(&w, &device);
        assert!(p.mix(MixCategory::Int) > 0.3, "int={}", p.mix(MixCategory::Int));
        assert_eq!(p.mix(MixCategory::Fma), 0.0);
        assert_eq!(p.mix(MixCategory::Mma), 0.0);
    }

    #[test]
    fn gemm_mma_profile_contains_mma() {
        let device = DeviceModel::named("v100-sim");
        let w = build(Benchmark::GemmMma, Precision::Half, CodeGen::Cuda10, Scale::Tiny);
        let p = profile(&w, &device);
        assert!(p.unit_count(FunctionalUnit::Hmma) > 0);
        assert!(p.mix(MixCategory::Mma) > 0.0);
    }

    #[test]
    fn gemm_has_lower_occupancy_than_mxm() {
        // The register-fat library kernel cannot keep as many warps
        // resident (Table I: GEMM occupancy 0.13-0.25 vs MxM 1.0).
        let device = DeviceModel::named("v100-sim");
        let gemm = build(Benchmark::Gemm, Precision::Single, CodeGen::Cuda10, Scale::Profile);
        let mxm = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Profile);
        let pg = profile(&gemm, &device);
        let pm = profile(&mxm, &device);
        assert!(pg.occupancy < pm.occupancy, "gemm {} !< mxm {}", pg.occupancy, pm.occupancy);
    }

    #[test]
    fn unit_utilization_bounded_and_positive() {
        let device = DeviceModel::named("v100-sim");
        let w = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small);
        let p = profile(&w, &device);
        let u = p.unit_utilization(&device, FunctionalUnit::Ffma);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        // A unit the kernel never touches is idle.
        assert_eq!(p.unit_utilization(&device, FunctionalUnit::Dfma), 0.0);
        // Unsupported units report zero rather than NaN.
        let kepler = DeviceModel::named("k40c-sim");
        assert_eq!(p.unit_utilization(&kepler, FunctionalUnit::Hmma), 0.0);
    }
}
