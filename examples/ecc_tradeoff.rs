//! ECC trade-off study: how SECDED changes a workload's SDC and DUE rates
//! (the paper's Figure 5 ECC ON/OFF comparison, on a few codes).
//!
//! ECC converts memory SDCs into corrections (masked) and double-bit
//! events into DUEs — so SDC drops sharply while DUE can *rise* (the paper
//! measures up to 5x more DUEs with ECC on for access-heavy codes).
//!
//! ```text
//! cargo run --release --example ecc_tradeoff
//! ```

use gpu_reliability::prelude::*;

fn main() {
    let device = DeviceModel::named("k40c-sim");
    // Beam statistics are Poisson in the fluence, so the campaigns use a
    // fixed run budget rather than the CI-targeted stop rule.
    let budget = Budget::fixed(4000).seed(3);

    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "code", "SDC(off)", "SDC(on)", "SDC ratio", "DUE(off)", "DUE(on)"
    );
    for benchmark in [Benchmark::Mxm, Benchmark::Hotspot, Benchmark::Mergesort, Benchmark::Nw] {
        let precision = if benchmark.is_integer() { Precision::Int32 } else { Precision::Single };
        let w = build(benchmark, precision, CodeGen::Cuda10, Scale::Small);
        let off =
            Campaign::new(Beam::auto(false), &w, &device).budget(budget.clone()).run().unwrap();
        let on = Campaign::new(Beam::auto(true), &w, &device).budget(budget.clone()).run().unwrap();
        let ratio = if on.sdc_fit.fit > 0.0 { off.sdc_fit.fit / on.sdc_fit.fit } else { f64::NAN };
        println!(
            "{:<12} {:>12.3e} {:>12.3e} {:>9.1}x {:>12.3e} {:>12.3e}",
            w.name, off.sdc_fit.fit, on.sdc_fit.fit, ratio, off.due_fit.fit, on.due_fit.fit
        );
    }
    println!("\nSECDED wipes out the memory SDC contribution (the paper measures");
    println!("up to 21x lower SDC rates with ECC on for the K40c).");
}
