//! Full reliability assessment of one workload: the paper's complete
//! methodology end to end, on a single code.
//!
//! 1. beam-measure the functional units (micro-benchmarks, Figure 3);
//! 2. measure the workload's AVF by fault injection (Figure 4);
//! 3. profile the workload (Table I);
//! 4. predict its FIT from 1-3 (Equations 1-4);
//! 5. beam-measure the workload and compare (Figure 6).
//!
//! ```text
//! cargo run --release --example reliability_assessment [BENCH]
//! ```
//! where `BENCH` is one of `mxm|gemm|hotspot|lava|nw|bfs` (default `hotspot`).

use gpu_reliability::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "hotspot".into());
    let benchmark = match which.as_str() {
        "mxm" => Benchmark::Mxm,
        "gemm" => Benchmark::Gemm,
        "lava" => Benchmark::Lava,
        "nw" => Benchmark::Nw,
        "bfs" => Benchmark::Bfs,
        _ => Benchmark::Hotspot,
    };
    let precision = if benchmark.is_integer() { Precision::Int32 } else { Precision::Single };

    let device = DeviceModel::named("k40c-sim");
    let w = build(benchmark, precision, CodeGen::Cuda10, Scale::Small);
    println!("assessing {} on {}\n", w.name, device.name);

    // 1. Characterize the functional units with beam micro-benchmarks.
    println!("[1/5] characterizing functional units (beam micro-benchmarks)...");
    let benches = microbench_suite();
    let char_cfg = CharacterizeConfig {
        beam: Budget::fixed(2000).seed(11),
        injection: Budget::fixed(150).seed(11),
    };
    let units = characterize_units(&device, &benches, &char_cfg);
    for u in [FunctionalUnit::Fadd, FunctionalUnit::Ffma, FunctionalUnit::Iadd] {
        println!("      {u}: SDC FIT/work {:.3e}", units.sdc_per_work(u));
    }

    // 2. AVF by injection.
    println!("[2/5] measuring AVF (NVBitFI, 600 injections)...");
    let avf = Campaign::new(Avf::new(Injector::NvBitFi), &w, &device)
        .budget(Budget::fixed(600).seed(11))
        .run()
        .unwrap();
    println!("      SDC {:.3}  DUE {:.3}  Masked {:.3}", avf.sdc_avf(), avf.due_avf(), avf.masked);

    // 3. Profile.
    println!("[3/5] profiling...");
    let prof = profile(&w, &device);
    println!("      IPC {:.2}  occupancy {:.2}  phi {:.2}", prof.ipc, prof.occupancy, prof.phi);

    // 4. Predict.
    println!("[4/5] predicting FIT (Equations 1-4)...");
    let feet = memory_footprint(&w, &device, &prof);
    let pred_on = predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
    let pred_off =
        predict(&prof, &avf, &units, &feet, &PredictOptions { ecc: false, use_phi: true });
    println!(
        "      predicted SDC FIT: ECC on {:.3e} | ECC off {:.3e}",
        pred_on.sdc_fit, pred_off.sdc_fit
    );

    // 5. Beam-measure and compare.
    println!("[5/5] beam campaigns (ECC on and off)...");
    let beam_budget = Budget::fixed(4000).seed(11);
    let beam_on =
        Campaign::new(Beam::auto(true), &w, &device).budget(beam_budget.clone()).run().unwrap();
    let beam_off = Campaign::new(Beam::auto(false), &w, &device).budget(beam_budget).run().unwrap();
    let row_on = compare(&w.name, &beam_on, &pred_on);
    let row_off = compare(&w.name, &beam_off, &pred_off);
    println!("\n== {} ==", w.name);
    println!(
        "   ECC ON : beam {:.3e}  predicted {:.3e}  ratio {:+.1}",
        row_on.measured_sdc, row_on.predicted_sdc, row_on.sdc_ratio
    );
    println!(
        "   ECC OFF: beam {:.3e}  predicted {:.3e}  ratio {:+.1}",
        row_off.measured_sdc, row_off.predicted_sdc, row_off.sdc_ratio
    );
    println!("   DUE underestimation (ECC on): {:.0}x", row_on.due_underestimation);
    println!("\n(the paper finds most SDC ratios within 5x and DUEs underestimated by orders of magnitude)");
}

fn microbench_suite() -> Vec<microbench::MicroBench> {
    gpu_reliability::microbench::suite(&DeviceModel::named("k40c"))
}

use gpu_reliability::microbench;
