//! Write your own kernel in the textual SASS-like assembly, run it on the
//! simulator, and inject faults into it — the full user path for custom
//! reliability studies.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use gpu_reliability::arch::{asm, Kernel, LaunchConfig};
use gpu_reliability::prelude::*;
use gpu_reliability::sim::{run, Executed};

const DOT_PRODUCT: &str = r#"
.kernel dot
// params: 0 = x base, 1 = y base, 2 = out base, 3 = n
// One warp: each lane accumulates a strided dot-product slice, then a
// butterfly reduction combines the lanes and lane 0 stores the result.
    S2R.LaneId R0
    LDP R1, 0            // x
    LDP R2, 1            // y
    LDP R3, 3            // n
    MOV R4, 0.0f         // acc
    MOV R5, R0           // i = lane
loop:
    ISETP.GE P0, R5, R3
    @P0 BRA reduce
    SHL R6, R5, 2
    IADD R7, R1, R6
    LDG.32 R8, R7, 0
    IADD R7, R2, R6
    LDG.32 R9, R7, 0
    FFMA R4, R8, R9, R4
    IADD R5, R5, 32      // warp-strided
    BRA loop
reduce:
    SHFL.BFLY R10, R4, 16
    FADD R4, R4, R10
    SHFL.BFLY R10, R4, 8
    FADD R4, R4, R10
    SHFL.BFLY R10, R4, 4
    FADD R4, R4, R10
    SHFL.BFLY R10, R4, 2
    FADD R4, R4, R10
    SHFL.BFLY R10, R4, 1
    FADD R4, R4, R10
    ISETP.NE P1, R0, 0
    @P1 BRA done
    LDP R11, 2
    STG.32 R11, 0, R4
done:
    EXIT
"#;

fn main() {
    let kernel = asm::assemble(DOT_PRODUCT).expect("kernel assembles");
    println!("assembled `{}`: {} instructions\n", kernel.name, kernel.len());
    println!("{}", kernel.disassemble());

    // Prepare inputs: x = [1..n], y = all 0.5; dot = 0.5 * n(n+1)/2.
    let n = 96u32;
    let x_base = 0u32;
    let y_base = 4 * n;
    let out_base = 8 * n;
    let mut mem = GlobalMemory::new(8 * n + 4);
    for i in 0..n {
        mem.write_f32_host(x_base + 4 * i, (i + 1) as f32).expect("x buffer covers every element");
        mem.write_f32_host(y_base + 4 * i, 0.5).expect("y buffer covers every element");
    }
    let launch = LaunchConfig::new(1, 32, vec![x_base, y_base, out_base, n]);
    let device = DeviceModel::named("v100-sim");

    let golden = run(&device, &kernel, &launch, mem.clone(), &RunOptions::default());
    assert_eq!(golden.status, ExecStatus::Completed);
    let result = golden.memory.read_f32_host(out_base).expect("output in bounds");
    println!("dot(x, y) = {result}   (expected {})", 0.5 * (n * (n + 1) / 2) as f32);

    // Now flip one bit in each of the first 20 FFMA outputs and watch the
    // outcomes.
    println!("\ninjecting into the first 20 FFMA outputs (bit 20):");
    let mut outcomes = OutcomeCounts::new();
    for nth in 0..20 {
        let opts = RunOptions::trial(FaultPlan::InstructionOutput {
            nth,
            site: SiteClass::Unit(FunctionalUnit::Ffma),
            flip: BitFlip::single(20),
        })
        .ecc(false)
        .watchdog(golden.counts.total * 4);
        let faulty = run(&device, &kernel, &launch, mem.clone(), &opts);
        let outcome = match faulty.status {
            ExecStatus::Due(_) => Outcome::Due,
            ExecStatus::Completed => {
                if faulty.memory.read_f32_host(out_base).expect("output in bounds") == result {
                    Outcome::Masked
                } else {
                    Outcome::Sdc
                }
            }
        };
        outcomes.record(outcome);
    }
    println!(
        "SDC {}  DUE {}  Masked {}  (a mantissa-bit flip in an accumulating\n\
         FFMA almost always survives to the dot product)",
        outcomes.sdc, outcomes.due, outcomes.masked
    );

    // Implementing `Target` makes any hand-written kernel a first-class
    // citizen of the campaign engine: seeded, sharded, adaptive.
    let dot = Dot { kernel, launch, memory: mem, out_base };
    let (avf, campaign) = Campaign::new(Avf::new(Injector::NvBitFi), &dot, &device)
        .budget(Budget::adaptive(50, 800, 0.05).seed(42))
        .run_full()
        .unwrap();
    println!(
        "\nadaptive NVBitFI campaign over the whole kernel: SDC {:.2}  DUE {:.2}\n\
         ({} trials, stop: {:?})",
        avf.sdc_avf(),
        avf.due_avf(),
        campaign.trials,
        campaign.stop
    );
}

/// The dot-product kernel as a campaign target.
struct Dot {
    kernel: Kernel,
    launch: LaunchConfig,
    memory: GlobalMemory,
    out_base: u32,
}

impl Target for Dot {
    fn name(&self) -> &str {
        "DOT"
    }
    fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    fn launch(&self) -> &LaunchConfig {
        &self.launch
    }
    fn fresh_memory(&self) -> GlobalMemory {
        self.memory.clone()
    }
    fn output_matches(&self, golden: &Executed, faulty: &Executed) -> bool {
        golden.memory.read_f32_host(self.out_base).expect("output in bounds")
            == faulty.memory.read_f32_host(self.out_base).expect("output in bounds")
    }
}
