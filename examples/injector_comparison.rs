//! SASSIFI vs NVBitFI, side by side (the paper's Figure 4 Kepler panel):
//! the same source codes, instrumented by two injectors that see two
//! different compiler generations and have different injection-site
//! capabilities.
//!
//! ```text
//! cargo run --release --example injector_comparison
//! ```

use gpu_reliability::prelude::*;

fn main() {
    let device = DeviceModel::named("k40c-sim");
    let budget = Budget::fixed(500).seed(99);

    println!("{:<12} {:>14} {:>14} {:>10}", "code", "SASSIFI SDC", "NVBitFI SDC", "ratio");
    let mut ratios = Vec::new();
    for benchmark in [
        Benchmark::Mxm,
        Benchmark::Hotspot,
        Benchmark::Lava,
        Benchmark::Gaussian,
        Benchmark::Ccl,
        Benchmark::Quicksort,
        Benchmark::Gemm, // proprietary: SASSIFI refuses it
    ] {
        let precision = if benchmark.is_integer() { Precision::Int32 } else { Precision::Single };
        // Each injector sees the binary its toolchain generation produces.
        let w7 = build(benchmark, precision, CodeGen::Cuda7, Scale::Small);
        let w10 = build(benchmark, precision, CodeGen::Cuda10, Scale::Small);

        let sassifi = Injector::Sassifi.supports(&w7, &device).map(|()| {
            Campaign::new(Avf::new(Injector::Sassifi), &w7, &device)
                .budget(budget.clone())
                .run()
                .unwrap()
        });
        let nvbitfi = Campaign::new(Avf::new(Injector::NvBitFi), &w10, &device)
            .budget(budget.clone())
            .run()
            .unwrap();
        match sassifi {
            Ok(s) => {
                let ratio = nvbitfi.sdc_avf() / s.sdc_avf().max(1e-9);
                ratios.push(ratio);
                println!(
                    "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
                    w10.name,
                    s.sdc_avf(),
                    nvbitfi.sdc_avf(),
                    ratio
                );
            }
            Err(why) => {
                println!(
                    "{:<12} {:>14} {:>14.3} {:>10}",
                    w10.name,
                    format!("n/a ({why})").chars().take(14).collect::<String>(),
                    nvbitfi.sdc_avf(),
                    "-"
                );
            }
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!(
        "\naverage NVBitFI/SASSIFI SDC-AVF ratio: {avg:.2}x  (the paper reports ~1.18x:\n\
         the newer back end's aggressive optimization raises the AVF)"
    );
}
