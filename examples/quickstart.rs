//! Quickstart: run one workload on the simulated GPU, profile it, inject
//! one fault, and see what happens.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_reliability::prelude::*;

fn main() {
    // A Volta-class campaign device (single SM; see DESIGN.md) and the
    // naive matrix-multiplication workload in single precision.
    let device = DeviceModel::named("v100-sim");
    let mxm = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Small);

    // 1. Fault-free (golden) execution.
    let golden = mxm.golden(&device);
    assert_eq!(golden.status, ExecStatus::Completed);
    println!("== golden run of {} ==", mxm.name);
    println!("   dynamic instructions : {}", golden.counts.total);
    println!("   modeled cycles       : {:.0}", golden.timing.cycles);
    println!("   executed IPC         : {:.2}", golden.timing.ipc);
    println!("   achieved occupancy   : {:.2}", golden.timing.achieved_occupancy);

    // 2. Profile: the Table I / Figure 1 view.
    let profile = profile(&mxm, &device);
    println!("\n== profile ==");
    println!("   registers/thread     : {}", profile.regs_per_thread);
    println!("   shared mem/block     : {} B", profile.shared_bytes);
    println!("   phi (occ x IPC)      : {:.2}", profile.phi);
    print!("   instruction mix      :");
    for cat in MixCategory::ALL {
        print!(" {cat}={:.0}%", profile.mix(cat) * 100.0);
    }
    println!();

    // 3. Inject a single bit flip into the 1000th FFMA's output, the way
    //    an architecture-level injector does.
    let opts = RunOptions::trial(FaultPlan::InstructionOutput {
        nth: 1000,
        site: SiteClass::Unit(FunctionalUnit::Ffma),
        flip: BitFlip::single(30),
    })
    .ecc(false)
    .watchdog(golden.counts.total * 4);
    let faulty = mxm.run_with(&device, &opts);
    let outcome = match faulty.status {
        ExecStatus::Due(kind) => format!("DUE ({kind})"),
        ExecStatus::Completed if mxm.output_matches(&golden, &faulty) => "Masked".to_string(),
        ExecStatus::Completed => "SDC (corrupted output)".to_string(),
    };
    println!("\n== single injected fault ==");
    println!("   flipped bit 30 of FFMA #1000 -> {outcome}");

    // 4. An adaptive AVF campaign (Figure 4 in miniature). The engine
    //    stops as soon as the Wilson 95% CI half-width on the SDC and DUE
    //    proportions reaches the quick-profile target, or at the ceiling.
    let budget = Budget::quick().seed(7);
    let ceiling = budget.ceiling;
    let (avf, outcome) = Campaign::new(Avf::new(Injector::NvBitFi), &mxm, &device)
        .budget(budget)
        .run_full()
        .unwrap();
    println!("\n== NVBitFI AVF, adaptive campaign ==");
    println!("   SDC {:.2}  DUE {:.2}  Masked {:.2}", avf.sdc_avf(), avf.due_avf(), avf.masked);
    match outcome.stop {
        StopReason::CiTarget { half_width, trials } => println!(
            "   stopped early: {trials} of {ceiling} budgeted trials \
             (95% CI half-width {half_width:.3})"
        ),
        StopReason::Ceiling => println!("   ran to the {ceiling}-trial ceiling"),
    }
}
