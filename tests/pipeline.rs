//! Cross-crate integration tests: the paper's methodology end to end, at
//! test scale, asserting the qualitative findings the reproduction is
//! supposed to preserve.

use gpu_reliability::prelude::*;

fn tiny(benchmark: Benchmark, precision: Precision, codegen: CodeGen) -> Workload {
    build(benchmark, precision, codegen, Scale::Tiny)
}

fn avf(
    injector: Injector,
    w: &Workload,
    device: &DeviceModel,
    trials: u32,
    seed: u64,
) -> AvfResult {
    Campaign::new(Avf::new(injector), w, device)
        .budget(Budget::fixed(trials).seed(seed))
        .run()
        .unwrap()
}

fn beam(w: &Workload, device: &DeviceModel, runs: u32, ecc: bool, seed: u64) -> BeamResult {
    Campaign::new(Beam::auto(ecc), w, device).budget(Budget::fixed(runs).seed(seed)).run().unwrap()
}

#[test]
fn every_workload_runs_on_its_device() {
    let kepler = DeviceModel::named("k40c-sim");
    let volta = DeviceModel::named("v100-sim");
    for w in kepler_suite(CodeGen::Cuda7, Scale::Tiny) {
        assert_eq!(w.golden(&kepler).status, ExecStatus::Completed, "{}", w.name);
    }
    for w in volta_suite(Scale::Tiny) {
        assert_eq!(w.golden(&volta).status, ExecStatus::Completed, "{}", w.name);
    }
}

#[test]
fn beam_and_injection_agree_on_determinism() {
    let device = DeviceModel::named("k40c-sim");
    let w = tiny(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10);
    let a = avf(Injector::NvBitFi, &w, &device, 80, 5);
    let b = avf(Injector::NvBitFi, &w, &device, 80, 5);
    assert_eq!(a.counts, b.counts);
    let ba = beam(&w, &device, 400, true, 5);
    let bb = beam(&w, &device, 400, true, 5);
    assert_eq!(ba.counts, bb.counts);
}

#[test]
fn sassifi_capability_matrix_matches_paper() {
    let kepler = DeviceModel::named("k40c-sim");
    let volta = DeviceModel::named("v100-sim");
    let mxm = tiny(Benchmark::Mxm, Precision::Single, CodeGen::Cuda7);
    let gemm = tiny(Benchmark::Gemm, Precision::Single, CodeGen::Cuda7);
    let yolo = tiny(Benchmark::Yolov2, Precision::Single, CodeGen::Cuda7);
    // SASSIFI: Kepler only, no proprietary libraries.
    assert!(Injector::Sassifi.supports(&mxm, &kepler).is_ok());
    assert!(Injector::Sassifi.supports(&mxm, &volta).is_err());
    assert!(Injector::Sassifi.supports(&gemm, &kepler).is_err());
    assert!(Injector::Sassifi.supports(&yolo, &kepler).is_err());
    // NVBitFI: everything.
    assert!(Injector::NvBitFi.supports(&gemm, &volta).is_ok());
    assert!(Injector::NvBitFi.supports(&yolo, &kepler).is_ok());
}

#[test]
fn cnn_avf_is_far_below_matrix_multiply() {
    // Section VI: "CNN's AVF is extremely low" thanks to classification
    // tolerance, while matrix multiplication has the highest AVF.
    let device = DeviceModel::named("v100-sim");
    let mxm = tiny(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10);
    let yolo = tiny(Benchmark::Yolov2, Precision::Single, CodeGen::Cuda10);
    let mxm_avf = avf(Injector::NvBitFi, &mxm, &device, 250, 9);
    let yolo_avf = avf(Injector::NvBitFi, &yolo, &device, 250, 9);
    assert!(
        yolo_avf.sdc_avf() < mxm_avf.sdc_avf() / 3.0,
        "yolo {} !<< mxm {}",
        yolo_avf.sdc_avf(),
        mxm_avf.sdc_avf()
    );
}

#[test]
fn integer_codes_have_lower_sdc_avf_than_float_codes() {
    // Section VI: floating-point codes (Gaussian, LUD, MxM, Lava) have
    // the highest AVF; integer codes (CCL & friends) the smallest.
    let device = DeviceModel::named("k40c-sim");
    let lava = tiny(Benchmark::Lava, Precision::Single, CodeGen::Cuda7);
    let ccl = tiny(Benchmark::Ccl, Precision::Int32, CodeGen::Cuda7);
    let lava_avf = avf(Injector::Sassifi, &lava, &device, 250, 13);
    let ccl_avf = avf(Injector::Sassifi, &ccl, &device, 250, 13);
    assert!(
        ccl_avf.sdc_avf() < lava_avf.sdc_avf(),
        "ccl {} !< lava {}",
        ccl_avf.sdc_avf(),
        lava_avf.sdc_avf()
    );
}

#[test]
fn ecc_reduces_beam_sdc_rate() {
    let device = DeviceModel::named("k40c-sim");
    let w = tiny(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10);
    let off = beam(&w, &device, 2500, false, 21);
    let on = beam(&w, &device, 2500, true, 21);
    assert!(
        off.sdc_fit.fit > 1.5 * on.sdc_fit.fit,
        "ECC off {} !>> on {}",
        off.sdc_fit.fit,
        on.sdc_fit.fit
    );
}

#[test]
fn volta_fit_grows_with_precision() {
    // Section VI: "for all the codes, independent of the ECC status,
    // increasing the precision increases the code FIT rate."
    let device = DeviceModel::named("v100-sim");
    let mut fits = Vec::new();
    for p in [Precision::Half, Precision::Single, Precision::Double] {
        let w = build(Benchmark::Mxm, p, CodeGen::Cuda10, Scale::Tiny);
        let r = beam(&w, &device, 4000, false, 17);
        fits.push((w.name.clone(), r.sdc_fit.fit));
    }
    assert!(fits[0].1 < fits[2].1, "H {} !< D {} ({fits:?})", fits[0].1, fits[2].1);
}

#[test]
fn prediction_pipeline_produces_finite_comparisons() {
    let device = DeviceModel::named("k40c-sim");
    let benches = gpu_reliability::microbench::suite(&device);
    let units = characterize_units(
        &device,
        &benches,
        &CharacterizeConfig {
            beam: Budget::fixed(500).seed(31),
            injection: Budget::fixed(60).seed(31),
        },
    );
    let w = tiny(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10);
    let prof = profile(&w, &device);
    let w_avf = avf(Injector::NvBitFi, &w, &device, 120, 31);
    let feet = memory_footprint(&w, &device, &prof);
    let pred = predict(&prof, &w_avf, &units, &feet, &PredictOptions::default());
    let beam_res = beam(&w, &device, 1200, true, 31);
    let row = compare(&w.name, &beam_res, &pred);
    assert!(row.sdc_ratio.is_finite());
    assert!(row.due_underestimation > 1.0, "DUE factor {}", row.due_underestimation);
}

#[test]
fn phi_factor_changes_prediction_by_the_profiled_phi() {
    let device = DeviceModel::named("k40c-sim");
    let benches = gpu_reliability::microbench::suite(&device);
    let units = characterize_units(
        &device,
        &benches,
        &CharacterizeConfig {
            beam: Budget::fixed(400).seed(37),
            injection: Budget::fixed(50).seed(37),
        },
    );
    let w = tiny(Benchmark::Hotspot, Precision::Single, CodeGen::Cuda10);
    let prof = profile(&w, &device);
    let w_avf = avf(Injector::NvBitFi, &w, &device, 100, 37);
    let feet = memory_footprint(&w, &device, &prof);
    let with_phi =
        predict(&prof, &w_avf, &units, &feet, &PredictOptions { ecc: true, use_phi: true });
    let without =
        predict(&prof, &w_avf, &units, &feet, &PredictOptions { ecc: true, use_phi: false });
    let ratio = with_phi.sdc_fit / without.sdc_fit;
    assert!((ratio - prof.phi).abs() < 1e-9, "ratio {ratio} != phi {}", prof.phi);
}

#[test]
fn hidden_resources_dominate_due_but_not_sdc() {
    // The structural claim behind Section VII-B: beam DUEs mostly come
    // from channels no injector can reach.
    let device = DeviceModel::named("k40c-sim");
    let w = tiny(Benchmark::Gaussian, Precision::Single, CodeGen::Cuda10);
    let r = beam(&w, &device, 3000, true, 41);
    assert!(r.due_fit.fit > r.sdc_fit.fit, "DUE {} !> SDC {}", r.due_fit.fit, r.sdc_fit.fit);
}
