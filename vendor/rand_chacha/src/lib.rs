//! Vendored `ChaCha12Rng`: the ChaCha stream cipher with 12 rounds used as
//! a PRNG, behind the vendored `rand` traits.
//!
//! This is a faithful ChaCha block function (RFC 8439 layout, 64-bit block
//! counter), so the statistical quality matches upstream `rand_chacha`.
//! The exact output stream differs from upstream only through
//! `seed_from_u64`'s seed expansion, which campaigns never compare against
//! externally generated streams — determinism (same seed → same draws) is
//! the contract, and it holds.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// ChaCha with 12 rounds as a seedable PRNG.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce words are zero.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[0] = 0x6170_7865;
        x[1] = 0x3320_646e;
        x[2] = 0x7962_2d32;
        x[3] = 0x6b20_6574;
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;

        let input = x;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha12Rng { key, counter: 0, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_clones_and_reseeds() {
        let mut a = ChaCha12Rng::seed_from_u64(123);
        let mut b = ChaCha12Rng::seed_from_u64(123);
        let mut c = a.clone();
        for _ in 0..1000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_eq!(v, c.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_draws_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
