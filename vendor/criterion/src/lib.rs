//! Vendored subset of `criterion`: `Criterion`, benchmark groups,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is real (wall-clock over batched iterations, warmup first)
//! but reporting is plain text — min/mean/max ns per iteration — with no
//! HTML reports, statistical regression, or baseline comparison. Good
//! enough to compare two targets run back-to-back, which is how the
//! workspace uses it (e.g. the no-sink vs counting-sink overhead check).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; campaigns here cost tens of
        // milliseconds per iteration, so keep runs bounded.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_bench(&format!("{}/{}", self.name, name), samples, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    samples: usize,
    /// Seconds per iteration, one entry per sample.
    measured: Vec<f64>,
}

impl Bencher {
    /// Measure `f`: warm up, pick a batch size targeting ~50 ms per
    /// sample, then record `samples` batches.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let warmup_budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_iters < 3 || (start.elapsed() < warmup_budget && warmup_iters < 1_000_000) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((0.05 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);

        self.measured.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.measured.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples, measured: Vec::new() };
    f(&mut bencher);
    if bencher.measured.is_empty() {
        println!("{name:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let n = bencher.measured.len() as f64;
    let mean = bencher.measured.iter().sum::<f64>() / n;
    let min = bencher.measured.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = bencher.measured.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<40} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("smoke", |b| b.iter(|| black_box(2u64).pow(10)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
