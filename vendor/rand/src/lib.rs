//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the *interface* it actually uses — `RngCore`,
//! `SeedableRng`, `Rng::{gen, gen_range, gen_bool}` and the `Standard` /
//! uniform distributions — with straightforward implementations. Campaign
//! reproducibility only requires self-consistency (same seed, same draws),
//! not bit-compatibility with upstream `rand`.

/// Core random-number generation: raw 32/64-bit outputs.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (as upstream does).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and a serviceable small PRNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers
    /// and `bool`, uniform in `[0, 1)` for floats.
    pub struct Standard;

    macro_rules! standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        use super::super::RngCore;

        /// Types that can be drawn uniformly from a half-open or inclusive
        /// range. Integer sampling uses a modulo reduction: the bias for
        /// campaign-sized ranges (≪ 2^64) is far below statistical noise.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "gen_range: empty range");
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain.
                            return (rng.next_u64() as $wide).wrapping_add(lo as $wide) as $t;
                        }
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            )*};
        }
        uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
        );

        macro_rules! uniform_float {
            ($($t:ty, $unit:expr);*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "gen_range: empty range");
                        let u = $unit(rng);
                        lo + (hi - lo) * u
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo <= hi, "gen_range: empty range");
                        let u = $unit(rng);
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }
        uniform_float!(
            f64, |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            f32, |rng: &mut R| (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        );

        /// Range-like arguments accepted by [`Rng::gen_range`].
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

pub use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (SplitMix64 core) standing in for `rand`'s
    /// `StdRng`. Not cryptographic; fine for tests and tooling.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: u16 = rng.gen_range(0..=3u16);
            assert!(u <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(9);
        let mut b = rngs::StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
