//! Vendored subset of `proptest`: enough to run the workspace's property
//! tests without registry access.
//!
//! Implemented: `Strategy` (ranges, `Just`, `any`, tuples, `prop_map`,
//! `prop_oneof!`, `prop::collection::vec`), the `proptest!` macro with
//! optional `#![proptest_config]`, and `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`. Not implemented: shrinking (a failing case reports the
//! generated values' message but is not minimized) and failure persistence.
//! Case generation is deterministic per test (seeded from the test path),
//! so failures reproduce across runs.

use std::ops::Range;

/// Deterministic generator driving strategy sampling (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// How one generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; draw a fresh case without counting this one.
    Reject,
    /// `prop_assert!`-family failure; the test panics with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The strategy backing [`any`]: full domain of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_float {
    ($($t:ty, $bits:ty, $from:ident);*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Any bit pattern, NaNs and infinities included: fault
                // studies care about those.
                <$t>::$from(rng.next_u64() as $bits)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_float!(f32, u32, from_bits; f64, u64, from_bits);

/// `any::<T>()`: the canonical full-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted size arguments for [`vec`].
    pub trait SizeBound {
        /// Half-open `[min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBound for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeBound for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy producing `Vec`s with element values from `element` and
    /// length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeBound) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Upstream exposes the crate under the `prop` alias in its prelude
    /// (for `prop::collection::vec` etc.).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts for {} accepted)",
                        attempts,
                        accepted
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", attempts, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(0u8..3, 0..20), pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 3));
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6);
        }

        #[test]
        fn mapped(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        /// Default config path (no inner attribute).
        #[test]
        fn default_config_runs(b in any::<bool>(), w in any::<u16>()) {
            prop_assert!((b as u8) < 2);
            prop_assert!((w as u32) < 65_536);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("x::y");
        let mut b = crate::TestRng::deterministic("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
