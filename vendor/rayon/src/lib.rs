//! Vendored subset of `rayon`: `slice.par_iter().map(f).collect()`.
//!
//! The build environment has no registry access, so this implements the one
//! parallel-iterator shape the campaign loops use, with real parallelism:
//! the input slice is split into contiguous chunks, one scoped `std::thread`
//! per chunk, and per-chunk results are concatenated in order — so
//! `collect()` observes the same element order as the serial iterator,
//! which the injection/beam campaigns rely on for reproducibility.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on collections borrowed as slices.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Marker trait so `use rayon::prelude::*` brings the adaptor methods in;
/// the methods live on the concrete types below.
pub trait ParallelIterator {}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<T> ParallelIterator for ParIter<'_, T> {}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F, R>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { slice: self.slice, f, _result: std::marker::PhantomData }
    }
}

/// Mapped parallel iterator; consumed by `collect`.
pub struct ParMap<'data, T, F, R> {
    slice: &'data [T],
    f: F,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<T, F, R> ParallelIterator for ParMap<'_, T, F, R> {}

impl<'data, T: Sync, F, R> ParMap<'data, T, F, R> {
    pub fn collect<C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n).max(1);
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon stub worker panicked")).collect()
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn works_on_slices_and_empty_input() {
        let input = [1u32, 2, 3];
        let out: Vec<u32> = input[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
