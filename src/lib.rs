//! # gpu-reliability
//!
//! A self-contained Rust reproduction of *"Demystifying GPU Reliability:
//! Comparing and Combining Beam Experiments, Fault Simulation, and
//! Profiling"* (dos Santos, Hari, Basso, Carro, Rech — IPDPS 2021).
//!
//! The paper asks whether architecture-level fault injection can predict
//! the failure rates that neutron-beam experiments measure on real GPUs.
//! Real silicon and beam time are not available to a library, so this
//! crate builds the entire experimental apparatus in software:
//!
//! * [`arch`] — a SASS-like ISA and Kepler/Volta device models;
//! * [`sim`] — a deterministic functional + timing GPU simulator with
//!   fault hooks (instruction outputs, registers, memory bits, addresses,
//!   program counters);
//! * [`workloads`] — the paper's fifteen codes (MxM, GEMM, GEMM-MMA,
//!   Hotspot, Lava, Gaussian, LUD, NW, BFS, CCL, Mergesort, Quicksort,
//!   YOLOv2/v3) for every supported precision;
//! * [`microbench`] — the seven synthetic micro-benchmark classes;
//! * [`profiler`] — the NVPROF analogue (instruction mix, IPC, occupancy);
//! * [`injector`] — SASSIFI and NVBitFI models with their documented
//!   capability differences;
//! * [`beam`] — a Monte-Carlo neutron-beam engine over hidden
//!   ground-truth cross-sections;
//! * [`campaign`] — the shared campaign engine: deterministic sharded
//!   execution, CI-targeted early stopping, checkpoint/resume;
//! * [`prediction`] — the paper's Equations 1-4 FIT model and the
//!   beam-vs-prediction comparison;
//! * [`stats`] — FIT/fluence accounting, Poisson and Wilson intervals.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_reliability::prelude::*;
//!
//! // Build a workload and a campaign device.
//! let device = DeviceModel::named("v100-sim");
//! let mxm = build(Benchmark::Mxm, Precision::Single, CodeGen::Cuda10, Scale::Tiny);
//!
//! // Profile it (Table I / Figure 1 metrics).
//! let profile = profile(&mxm, &device);
//! assert!(profile.phi > 0.0);
//!
//! // Measure its AVF with NVBitFI on the shared campaign engine
//! // (Figure 4). `Budget::quick()` would stop early at a 0.05 CI
//! // half-width; a fixed budget always spends its whole ceiling.
//! let avf = Campaign::new(Avf::new(Injector::NvBitFi), &mxm, &device)
//!     .budget(Budget::fixed(50).seed(1))
//!     .run()
//!     .unwrap();
//! assert!(avf.counts.total() == 50);
//! ```

pub use beam;
pub use campaign;
pub use gpu_arch as arch;
pub use gpu_sim as sim;
pub use injector;
pub use microbench;
pub use obs;
pub use prediction;
pub use profiler;
pub use softfloat;
pub use stats;
pub use workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use beam::{Beam, BeamResult, CrossSections};
    pub use campaign::{
        Budget, Campaign, CampaignRun, Checkpoint, CheckpointStore, StopReason, Watchdog,
    };
    pub use gpu_arch::{
        Architecture, CodeGen, DeviceModel, FunctionalUnit, MixCategory, Precision,
    };
    pub use gpu_sim::{
        run_golden, BitFlip, DueKind, ExecStatus, FaultPlan, GlobalMemory, RunOptions, SimError,
        SiteClass, Target,
    };
    pub use injector::{Avf, AvfResult, ClassAvf, Injector};
    pub use prediction::{
        characterize_units, compare, memory_footprint, predict, CharacterizeConfig, PredictOptions,
        UnitFits,
    };
    pub use profiler::{profile, KernelProfile};
    pub use stats::{signed_ratio, wilson_half_width, FitRate, Outcome, OutcomeCounts};
    pub use workloads::{build, kepler_suite, volta_suite, Benchmark, Scale, Workload};
    // The deprecated pre-engine entry points (`measure_avf*`, `expose*`,
    // `CampaignConfig`, `BeamConfig`) are no longer re-exported here;
    // migrating callers can still reach them at their crate paths until
    // the forwarders are removed.
}
